// Property-based sweeps (TEST_P) across seeds, sizes and suite specs:
// mathematical invariants that must hold for *every* instance, not just the
// fixtures of the per-module tests.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "baseline/fm.h"
#include "density/electro.h"
#include "fft/poisson.h"
#include "gen/suites.h"
#include "legal/legalize.h"
#include "eval/metrics.h"
#include "opt/nesterov.h"
#include "util/rng.h"
#include "util/stats.h"
#include "wirelength/wl.h"

namespace ep {
namespace {

// ---------- Poisson solver properties ----------

class PoissonSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PoissonSizes, LinearityOfTheSolveOperator) {
  const std::size_t m = GetParam();
  PoissonSolver s(m, m, 1.0, 1.0);
  Rng rng(m);
  std::vector<double> a(m * m), b(m * m), sum(m * m);
  for (std::size_t i = 0; i < m * m; ++i) {
    a[i] = rng.uniform(-1, 1);
    b[i] = rng.uniform(-1, 1);
    sum[i] = 2.0 * a[i] - 0.5 * b[i];
  }
  std::vector<double> psiA, psiB;
  s.solve(a);
  psiA.assign(s.psi().begin(), s.psi().end());
  s.solve(b);
  psiB.assign(s.psi().begin(), s.psi().end());
  s.solve(sum);
  for (std::size_t i = 0; i < m * m; i += 7) {
    EXPECT_NEAR(s.psi()[i], 2.0 * psiA[i] - 0.5 * psiB[i], 1e-8);
  }
}

TEST_P(PoissonSizes, NeumannBoundaryFieldVanishes) {
  // The normal field component at the outermost bin centers must be small:
  // cos-series synthesis guarantees zero gradient exactly at the wall, and
  // the half-bin offset leaves only a small residual for smooth rho.
  const std::size_t m = GetParam();
  PoissonSolver s(m, m, 1.0, 1.0);
  std::vector<double> rho(m * m);
  for (std::size_t iy = 0; iy < m; ++iy) {
    for (std::size_t ix = 0; ix < m; ++ix) {
      const double x = (ix + 0.5) / m, y = (iy + 0.5) / m;
      rho[iy * m + ix] = std::cos(3.14159265 * x) * std::cos(3.14159265 * y);
    }
  }
  s.solve(rho);
  double interiorMax = 0.0, boundaryMax = 0.0;
  for (std::size_t iy = 0; iy < m; ++iy) {
    boundaryMax = std::max(
        {boundaryMax, std::abs(s.fieldX()[iy * m + 0]),
         std::abs(s.fieldX()[iy * m + (m - 1)])});
    for (std::size_t ix = 0; ix < m; ++ix) {
      interiorMax = std::max(interiorMax, std::abs(s.fieldX()[iy * m + ix]));
    }
  }
  EXPECT_LT(boundaryMax, 0.25 * interiorMax);
}

TEST_P(PoissonSizes, EnergyScalesQuadraticallyWithCharge) {
  const std::size_t m = GetParam();
  ElectroDensity ed({0, 0, double(m), double(m)}, m, m, 1.0);
  PlacementDB empty;
  empty.region = {0, 0, double(m), double(m)};
  empty.finalize();
  ed.stampFixed(empty);
  std::vector<double> cx{m * 0.4, m * 0.6}, cy{m * 0.5, m * 0.5};
  std::vector<double> w1{4, 4}, h1{4, 4};
  ed.update(ChargeView{cx, cy, w1, h1});
  const double e1 = ed.energy();
  // Doubling the charge *at identical footprints* (each charge listed
  // twice) must exactly quadruple the energy: N is quadratic in rho.
  std::vector<double> cx2{m * 0.4, m * 0.6, m * 0.4, m * 0.6};
  std::vector<double> cy2{m * 0.5, m * 0.5, m * 0.5, m * 0.5};
  std::vector<double> w2{4, 4, 4, 4}, h2{4, 4, 4, 4};
  ed.update(ChargeView{cx2, cy2, w2, h2});
  const double e2 = ed.energy();
  EXPECT_NEAR(e2 / e1, 4.0, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Grids, PoissonSizes,
                         ::testing::Values(32, 64, 128));

// ---------- Wirelength model properties ----------

class WlSeeds : public ::testing::TestWithParam<std::uint64_t> {};

struct RandomNets {
  PlacementDB db;
  std::vector<std::int32_t> objToVar;
  std::vector<double> x, y;

  explicit RandomNets(std::uint64_t seed) {
    Rng rng(seed);
    db.region = {0, 0, 100, 100};
    const int n = 30;
    for (int i = 0; i < n; ++i) {
      Object o;
      o.name = "c" + std::to_string(i);
      o.w = 1;
      o.h = 1;
      db.objects.push_back(o);
      objToVar.push_back(i);
      x.push_back(rng.uniform(0, 100));
      y.push_back(rng.uniform(0, 100));
    }
    for (int e = 0; e < 40; ++e) {
      Net net;
      net.name = "n" + std::to_string(e);
      const int deg = 2 + static_cast<int>(rng.below(5));
      for (int k = 0; k < deg; ++k) {
        net.pins.push_back({static_cast<std::int32_t>(rng.below(n)),
                            rng.uniform(-0.4, 0.4), rng.uniform(-0.4, 0.4)});
      }
      db.nets.push_back(net);
    }
    db.finalize();
  }
  [[nodiscard]] VarView view() const { return {&db, objToVar, x, y}; }
};

TEST_P(WlSeeds, WaLowerBoundsLseUpperBoundsHpwl) {
  RandomNets f(GetParam());
  std::vector<double> gx(f.x.size()), gy(f.x.size());
  const double exact = hpwl(f.view());
  const double wa = waWirelengthGrad(f.view(), 2.0, 2.0, gx, gy);
  const double lse = lseWirelengthGrad(f.view(), 2.0, 2.0, gx, gy);
  EXPECT_LE(wa, exact + 1e-9);
  EXPECT_GE(lse, exact - 1e-9);
}

TEST_P(WlSeeds, WaGradientMatchesFdOnRandomNets) {
  RandomNets f(GetParam());
  const double gamma = 1.5;
  std::vector<double> gx(f.x.size()), gy(f.x.size()), tx(f.x.size()),
      ty(f.x.size());
  waWirelengthGrad(f.view(), gamma, gamma, gx, gy);
  Rng rng(GetParam() + 1);
  const double eps = 1e-6;
  for (int trial = 0; trial < 5; ++trial) {
    const auto i = static_cast<std::size_t>(rng.below(f.x.size()));
    const double saved = f.x[i];
    f.x[i] = saved + eps;
    const double plus = waWirelengthGrad(f.view(), gamma, gamma, tx, ty);
    f.x[i] = saved - eps;
    const double minus = waWirelengthGrad(f.view(), gamma, gamma, tx, ty);
    f.x[i] = saved;
    EXPECT_NEAR((plus - minus) / (2 * eps), gx[i], 1e-4);
  }
}

TEST_P(WlSeeds, TranslationInvariance) {
  RandomNets f(GetParam());
  std::vector<double> gx(f.x.size()), gy(f.x.size());
  const double before = waWirelengthGrad(f.view(), 2.0, 2.0, gx, gy);
  const auto gxBefore = gx;
  for (auto& v : f.x) v += 13.5;
  for (auto& v : f.y) v -= 2.25;
  const double after = waWirelengthGrad(f.view(), 2.0, 2.0, gx, gy);
  EXPECT_NEAR(after, before, 1e-6 * before);
  for (std::size_t i = 0; i < gx.size(); ++i) {
    EXPECT_NEAR(gx[i], gxBefore[i], 1e-8);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WlSeeds,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// ---------- FM partitioner properties ----------

class FmSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FmSeeds, InvariantsOnRandomHypergraphs) {
  Rng rng(GetParam());
  FmProblem p;
  const int n = 50 + static_cast<int>(rng.below(50));
  p.areas.resize(static_cast<std::size_t>(n));
  for (auto& a : p.areas) a = rng.uniform(0.5, 4.0);
  const int nets = 2 * n;
  for (int e = 0; e < nets; ++e) {
    std::vector<std::int32_t> net;
    const int deg = 2 + static_cast<int>(rng.below(4));
    for (int k = 0; k < deg; ++k) {
      net.push_back(static_cast<std::int32_t>(rng.below(n)));
    }
    std::sort(net.begin(), net.end());
    net.erase(std::unique(net.begin(), net.end()), net.end());
    if (net.size() >= 2) p.nets.push_back(net);
  }
  p.tolerance = 0.12;
  const FmResult res = fmPartition(p, GetParam() * 7 + 1);
  // Cut never worsens and the reported cut is the true cut.
  EXPECT_LE(res.finalCut, res.initialCut);
  EXPECT_EQ(res.finalCut, cutSize(p, res.side));
  // Balance respected.
  double total = std::accumulate(p.areas.begin(), p.areas.end(), 0.0);
  double a0 = 0.0;
  for (int i = 0; i < n; ++i) {
    if (res.side[static_cast<std::size_t>(i)] == 0) {
      a0 += p.areas[static_cast<std::size_t>(i)];
    }
  }
  EXPECT_NEAR(a0 / total, 0.5, p.tolerance + 4.0 / total);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FmSeeds,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

// ---------- Nesterov vs GD across random quadratics ----------

class OptSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OptSeeds, MomentumNeverLosesOnQuadratics) {
  Rng rng(GetParam());
  const std::size_t n = 40;
  std::vector<double> a(n), c(n);
  for (std::size_t i = 0; i < n; ++i) {
    a[i] = std::exp(rng.uniform(0.0, 5.0));  // condition number up to e^5
    c[i] = rng.uniform(-3, 3);
  }
  auto fn = [&](std::span<const double> x, std::span<double> g) {
    double f = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double d = x[i] - c[i];
      f += 0.5 * a[i] * d * d;
      g[i] = a[i] * d;
    }
    return f;
  };
  double fN = 0.0, fG = 0.0;
  {
    NesterovOptimizer opt(n, fn);
    std::vector<double> v0(n, 0.0);
    opt.initialize(v0);
    for (int k = 0; k < 150; ++k) fN = opt.step().objective;
  }
  {
    NesterovConfig cfg;
    cfg.enableMomentum = false;
    NesterovOptimizer opt(n, fn, cfg);
    std::vector<double> v0(n, 0.0);
    opt.initialize(v0);
    for (int k = 0; k < 150; ++k) fG = opt.step().objective;
  }
  EXPECT_LE(fN, fG * 1.5 + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptSeeds, ::testing::Values(3, 5, 8, 13, 21));

// ---------- Legalizer sweep across utilizations ----------

class LegalizeUtil : public ::testing::TestWithParam<int> {};

TEST_P(LegalizeUtil, LegalAcrossUtilizations) {
  const double util = 0.35 + 0.1 * GetParam();  // 0.35 .. 0.85
  GenSpec spec;
  spec.name = "util";
  spec.numCells = 400;
  spec.numFixedMacros = 3;
  spec.utilization = util;
  spec.seed = 900 + static_cast<std::uint64_t>(GetParam());
  PlacementDB db = generateCircuit(spec);
  // Worst-case input: everything piled at the center.
  const Point c = db.region.center();
  for (auto i : db.movable()) {
    db.objects[static_cast<std::size_t>(i)].setCenter(c.x, c.y);
  }
  const LegalizeResult res = legalizeCells(db);
  EXPECT_TRUE(res.success) << "util " << util;
  const auto rep = checkLegality(db);
  EXPECT_TRUE(rep.legal) << "util " << util << ": " << rep.firstIssue;
}

INSTANTIATE_TEST_SUITE_P(Utils, LegalizeUtil, ::testing::Range(0, 6));

// ---------- Generator sweep over every suite spec ----------

class AllSuites : public ::testing::TestWithParam<int> {};

TEST_P(AllSuites, EveryCircuitIsValidAndSized) {
  std::vector<GenSpec> all;
  for (const auto& s : ispd2005Suite()) all.push_back(s);
  for (const auto& s : ispd2006Suite()) all.push_back(s);
  for (const auto& s : mmsSuite()) all.push_back(s);
  const auto& spec = all[static_cast<std::size_t>(GetParam())];
  // Shrink for speed; structure checks remain meaningful.
  GenSpec small = spec;
  small.numCells = std::min<std::size_t>(spec.numCells, 400);
  small.numMovableMacros = std::min<std::size_t>(spec.numMovableMacros, 6);
  const PlacementDB db = generateCircuit(small);
  EXPECT_TRUE(db.validate().ok()) << spec.name;
  EXPECT_GE(db.freeArea() * db.targetDensity,
            db.totalMovableArea() * 0.99)
      << spec.name << ": movable area exceeds density budget";
  EXPECT_FALSE(db.rows.empty());
}

INSTANTIATE_TEST_SUITE_P(Specs, AllSuites, ::testing::Range(0, 32));

}  // namespace
}  // namespace ep
