// Chaos sweep (ctest -L chaos): every registered fault-injection site is
// armed in turn against the full pipeline — generate, write Bookshelf, read
// it back, run the supervised mixed-size flow with durable snapshots. The
// contract under any single fault: a typed ep::Status (or a recovered OK
// run), finite in-region positions, and never a crash. Pair with the asan
// preset (EP_SANITIZE=address) for memory-safety coverage of the same paths.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <string>

#include "bookshelf/bookshelf.h"
#include "eplace/flow.h"
#include "eplace/supervisor.h"
#include "gen/generator.h"
#include "util/context.h"
#include "util/fault_injector.h"

namespace ep {
namespace {

namespace fs = std::filesystem;

bool placementFinite(const PlacementDB& db) {
  for (auto i : db.movable()) {
    const auto& o = db.objects[static_cast<std::size_t>(i)];
    if (!std::isfinite(o.lx) || !std::isfinite(o.ly)) return false;
  }
  return true;
}

class ChaosTest : public ::testing::TestWithParam<const char*> {
 protected:
  void SetUp() override {
    std::string name = GetParam();
    for (auto& c : name) {
      if (c == '.') c = '_';
    }
    dir_ = fs::path(::testing::TempDir()) / ("chaos_test_" + name);
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path dir_;
};

TEST_P(ChaosTest, SingleFaultNeverCrashesTheSupervisedFlow) {
  const std::string site = GetParam();

  // Stream sites corrupt bytes/lines; numeric sites corrupt values; io.*
  // sites return typed errors from the durable-write path. The io.* faults
  // are armed persistently (count = -1) so every attempt fails and the
  // retry policy exhausts — the strongest storage-fault case: the
  // supervisor must degrade to snapshot-less mode and still finish.
  FaultSpec spec;
  const bool ioSite = site.rfind("io.", 0) == 0;
  const bool streamSite = site == "bookshelf.line" || site == "snapshot.write";
  spec.kind = ioSite          ? FaultKind::kError
              : streamSite    ? FaultKind::kTruncate
                              : FaultKind::kNaN;
  spec.atTick = site == "bookshelf.line" ? 50 : (ioSite ? 0 : 3);
  spec.count = ioSite ? -1 : 1;

  GenSpec gen;
  gen.name = "chaos";
  gen.numCells = 200;
  gen.numMovableMacros = 2;
  gen.seed = 5;
  const PlacementDB generated = generateCircuit(gen);
  ASSERT_TRUE(writeBookshelf(dir_.string(), "chaos", generated).ok());

  RuntimeContext ctx;
  ctx.faults().arm(site, spec);

  PlacementDB db;
  const Status rd = readBookshelf((dir_ / "chaos.aux").string(), db, &ctx);
  if (!rd.ok()) {
    // The reader hit the fault: a typed rejection is the correct outcome.
    EXPECT_TRUE(rd.code() == StatusCode::kInvalidInput ||
                rd.code() == StatusCode::kIo)
        << rd.toString();
    return;
  }

  FlowConfig cfg;
  cfg.gp.maxIterations = 250;
  SupervisorConfig sup;
  sup.snapshotDir = (dir_ / "snaps").string();
  sup.saveEvery = 25;
  SupervisorReport report;
  const auto run = runSupervisedFlow(db, cfg, sup, &report, &ctx);
  if (!run.ok()) {
    EXPECT_NE(run.status().code(), StatusCode::kOk);
    return;
  }
  // Degradation is allowed (run->status may be non-OK); corruption is not.
  EXPECT_TRUE(placementFinite(db));
  EXPECT_TRUE(std::isfinite(run->finalHpwl));
}

INSTANTIATE_TEST_SUITE_P(
    AllSites, ChaosTest, ::testing::ValuesIn(knownFaultSites()),
    [](const ::testing::TestParamInfo<const char*>& info) {
      std::string name = info.param;
      for (auto& c : name) {
        if (c == '.') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace ep
