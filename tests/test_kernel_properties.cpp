// Property tests for the numeric kernels the placer's hot paths rely on:
// the radix-2 FFT and the trigonometric transforms against naive O(n^2)
// reference sums, the WA wirelength gradient against central finite
// differences, and the ThreadPool's partitioning/reduction/error contracts.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <complex>
#include <cstdint>
#include <limits>
#include <numbers>
#include <random>
#include <stdexcept>
#include <utility>
#include <vector>

#include "fft/dct.h"
#include "fft/fft.h"
#include "fft/plan.h"
#include "gen/generator.h"
#include "model/placement_view.h"
#include "util/parallel.h"
#include "wirelength/wl.h"

namespace ep {
namespace {

std::vector<double> randomVector(std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::vector<double> v(n);
  for (auto& x : v) x = dist(rng);
  return v;
}

// ---------- FFT vs the naive DFT ----------

std::vector<Complex> naiveDft(const std::vector<Complex>& x) {
  const std::size_t n = x.size();
  std::vector<Complex> out(n);
  for (std::size_t k = 0; k < n; ++k) {
    Complex sum = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      const double ang = -2.0 * std::numbers::pi * static_cast<double>(j) *
                         static_cast<double>(k) / static_cast<double>(n);
      sum += x[j] * Complex(std::cos(ang), std::sin(ang));
    }
    out[k] = sum;
  }
  return out;
}

TEST(FftProperties, MatchesNaiveDftOnRandomSizes) {
  std::mt19937_64 rng(101);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  for (const std::size_t n : {2u, 8u, 16u, 64u, 128u, 256u}) {
    std::vector<Complex> x(n);
    for (auto& c : x) c = Complex(dist(rng), dist(rng));
    std::vector<Complex> fast = x;
    Fft fft(n);
    fft.forward(fast);
    const std::vector<Complex> ref = naiveDft(x);
    for (std::size_t k = 0; k < n; ++k) {
      EXPECT_NEAR(fast[k].real(), ref[k].real(),
                  1e-9 * static_cast<double>(n))
          << "n=" << n << " k=" << k;
      EXPECT_NEAR(fast[k].imag(), ref[k].imag(),
                  1e-9 * static_cast<double>(n))
          << "n=" << n << " k=" << k;
    }
  }
}

TEST(FftProperties, RoundTripIsIdentity) {
  std::mt19937_64 rng(102);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  for (const std::size_t n : {4u, 32u, 512u}) {
    std::vector<Complex> x(n);
    for (auto& c : x) c = Complex(dist(rng), dist(rng));
    std::vector<Complex> y = x;
    Fft fft(n);
    fft.forward(y);
    fft.inverse(y);
    for (std::size_t k = 0; k < n; ++k) {
      EXPECT_NEAR(y[k].real(), x[k].real(), 1e-12 * static_cast<double>(n));
      EXPECT_NEAR(y[k].imag(), x[k].imag(), 1e-12 * static_cast<double>(n));
    }
  }
}

TEST(FftProperties, ParsevalEnergyConservation) {
  for (const std::size_t n : {16u, 64u, 256u}) {
    std::mt19937_64 rng(103 + n);
    std::uniform_real_distribution<double> dist(-1.0, 1.0);
    std::vector<Complex> x(n);
    for (auto& c : x) c = Complex(dist(rng), dist(rng));
    double timeEnergy = 0.0;
    for (const auto& c : x) timeEnergy += std::norm(c);
    std::vector<Complex> X = x;
    Fft fft(n);
    fft.forward(X);
    double freqEnergy = 0.0;
    for (const auto& c : X) freqEnergy += std::norm(c);
    freqEnergy /= static_cast<double>(n);
    EXPECT_NEAR(freqEnergy, timeEnergy, 1e-9 * timeEnergy);
  }
}

// ---------- trigonometric transforms vs naive sums ----------

TEST(DctProperties, Dct2MatchesNaiveSum) {
  for (const std::size_t n : {8u, 32u, 128u}) {
    const std::vector<double> x = randomVector(n, 201 + n);
    std::vector<double> fast = x;
    Dct dct(n);
    dct.dct2(fast);
    for (std::size_t k = 0; k < n; ++k) {
      double ref = 0.0;
      for (std::size_t j = 0; j < n; ++j) {
        ref += x[j] * std::cos(std::numbers::pi *
                               (2.0 * static_cast<double>(j) + 1.0) *
                               static_cast<double>(k) /
                               (2.0 * static_cast<double>(n)));
      }
      EXPECT_NEAR(fast[k], ref, 1e-10 * static_cast<double>(n))
          << "n=" << n << " k=" << k;
    }
  }
}

TEST(DctProperties, Idct2InvertsDct2) {
  for (const std::size_t n : {8u, 64u, 256u}) {
    const std::vector<double> x = randomVector(n, 301 + n);
    std::vector<double> y = x;
    Dct dct(n);
    dct.dct2(y);
    dct.idct2(y);
    for (std::size_t j = 0; j < n; ++j) {
      EXPECT_NEAR(y[j], x[j], 1e-11 * static_cast<double>(n));
    }
  }
}

TEST(DctProperties, CosineSynthesisMatchesNaiveSum) {
  for (const std::size_t n : {8u, 32u}) {
    const std::vector<double> c = randomVector(n, 401 + n);
    std::vector<double> fast = c;
    Dct dct(n);
    dct.cosineSynthesis(fast);
    for (std::size_t j = 0; j < n; ++j) {
      double ref = 0.0;
      for (std::size_t k = 0; k < n; ++k) {
        ref += c[k] * std::cos(std::numbers::pi * static_cast<double>(k) *
                               (2.0 * static_cast<double>(j) + 1.0) /
                               (2.0 * static_cast<double>(n)));
      }
      EXPECT_NEAR(fast[j], ref, 1e-10 * static_cast<double>(n));
    }
  }
}

TEST(DctProperties, SineSynthesisMatchesNaiveSum) {
  for (const std::size_t n : {8u, 32u}) {
    const std::vector<double> s = randomVector(n, 501 + n);
    std::vector<double> fast = s;
    Dct dct(n);
    dct.sineSynthesis(fast);
    for (std::size_t j = 0; j < n; ++j) {
      double ref = 0.0;
      for (std::size_t k = 0; k < n; ++k) {
        ref += s[k] * std::sin(std::numbers::pi *
                               (static_cast<double>(k) + 1.0) *
                               (2.0 * static_cast<double>(j) + 1.0) /
                               (2.0 * static_cast<double>(n)));
      }
      EXPECT_NEAR(fast[j], ref, 1e-10 * static_cast<double>(n));
    }
  }
}

TEST(DctProperties, Transform2dParallelBitIdenticalToSerial) {
  const std::size_t nx = 32, ny = 16;
  const std::vector<double> grid = randomVector(nx * ny, 601);
  Dct dctX(nx), dctY(ny);
  std::vector<double> serial = grid;
  transform2d(serial, nx, ny, dctX, dctY, TrigOp::kDct2, TrigOp::kDct2);
  ThreadPool pool(4);
  for (const auto opPair :
       {std::pair{TrigOp::kDct2, TrigOp::kDct2},
        std::pair{TrigOp::kCosSynth, TrigOp::kSinSynth}}) {
    std::vector<double> a = grid, b = grid;
    transform2d(a, nx, ny, dctX, dctY, opPair.first, opPair.second);
    transform2d(b, nx, ny, dctX, dctY, opPair.first, opPair.second, &pool);
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(std::bit_cast<std::uint64_t>(a[i]),
                std::bit_cast<std::uint64_t>(b[i]))
          << "bin " << i;
    }
  }
}

// ---------- SpectralPlan: the planned real-input pipeline ----------

// The grid sizes the Poisson solver actually plans for.
constexpr std::size_t kSolverSizes[] = {32, 64, 128, 256, 512, 1024};

double maxAbs(const std::vector<double>& v) {
  double m = 0.0;
  for (double x : v) m = std::max(m, std::abs(x));
  return m;
}

// Naive O(n^2) reference sums matching the dct.h transform definitions.
std::vector<double> naiveTrig(TrigOp op, const std::vector<double>& x) {
  const std::size_t n = x.size();
  const double nD = static_cast<double>(n);
  std::vector<double> out(n, 0.0);
  for (std::size_t k = 0; k < n; ++k) {
    double sum = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      const double jD = static_cast<double>(j);
      const double kD = static_cast<double>(k);
      double w = 0.0;
      switch (op) {
        case TrigOp::kDct2:
          w = std::cos(std::numbers::pi * (2.0 * jD + 1.0) * kD / (2.0 * nD));
          sum += x[j] * w;
          break;
        case TrigOp::kIdct2:
          // x here holds coefficients; j indexes the coefficient.
          w = std::cos(std::numbers::pi * jD * (2.0 * kD + 1.0) / (2.0 * nD));
          sum += (j == 0 ? 1.0 : 2.0) / nD * x[j] * w;
          break;
        case TrigOp::kCosSynth:
          w = std::cos(std::numbers::pi * jD * (2.0 * kD + 1.0) / (2.0 * nD));
          sum += x[j] * w;
          break;
        case TrigOp::kSinSynth:
          w = std::sin(std::numbers::pi * (jD + 1.0) * (2.0 * kD + 1.0) /
                       (2.0 * nD));
          sum += x[j] * w;
          break;
      }
    }
    out[k] = sum;
  }
  return out;
}

// Adversarial inputs for the real-FFT pipeline: the Makhoul permutation and
// Hermitian unpack touch exactly the slots these vectors stress (first/last
// element, pure DC, Nyquist-rate alternation, huge dynamic range).
std::vector<std::vector<double>> adversarialInputs(std::size_t n) {
  std::vector<std::vector<double>> cases;
  std::vector<double> v(n, 0.0);
  v[0] = 1.0;
  cases.push_back(v);  // impulse at 0
  std::fill(v.begin(), v.end(), 0.0);
  v[n - 1] = 1.0;
  cases.push_back(v);  // impulse at n-1
  std::fill(v.begin(), v.end(), 1.0);
  cases.push_back(v);  // constant (DC only)
  for (std::size_t j = 0; j < n; ++j) v[j] = (j % 2 == 0) ? 1.0 : -1.0;
  cases.push_back(v);  // alternating (Nyquist)
  for (std::size_t j = 0; j < n; ++j) {
    v[j] = (j % 3 == 0 ? 1e8 : 1e-8) * ((j % 5 < 2) ? -1.0 : 1.0);
  }
  cases.push_back(v);  // mixed dynamic range
  return cases;
}

TEST(SpectralPlanProperties, MatchesNaiveRealDftSumsOnRandomAndAdversarial) {
  for (const std::size_t n : {2u, 4u, 8u, 16u, 32u, 128u, 512u}) {
    SpectralPlan plan(n);
    SpectralScratch s;
    auto inputs = adversarialInputs(n);
    inputs.push_back(randomVector(n, 900 + n));
    for (const auto& x : inputs) {
      for (const TrigOp op : {TrigOp::kDct2, TrigOp::kIdct2, TrigOp::kCosSynth,
                              TrigOp::kSinSynth}) {
        const std::vector<double> ref = naiveTrig(op, x);
        std::vector<double> fast = x;
        plan.apply(op, fast, s);
        const double tol =
            1e-13 * static_cast<double>(n) * std::max(1.0, maxAbs(ref));
        for (std::size_t k = 0; k < n; ++k) {
          ASSERT_NEAR(fast[k], ref[k], tol)
              << "n=" << n << " op=" << static_cast<int>(op) << " k=" << k;
        }
      }
    }
  }
}

TEST(SpectralPlanProperties, RoundTripAndParsevalAtEverySolverSize) {
  for (const std::size_t n : kSolverSizes) {
    SpectralPlan plan(n);
    SpectralScratch s;
    const double nD = static_cast<double>(n);
    const std::vector<double> x = randomVector(n, 1000 + n);

    // DCT-II -> inverse DCT-II round trip.
    std::vector<double> y = x;
    plan.dct2(y, s);
    const std::vector<double> c = y;
    plan.idct2(y, s);
    for (std::size_t j = 0; j < n; ++j) {
      ASSERT_NEAR(y[j], x[j], 1e-13 * nD) << "n=" << n << " j=" << j;
    }

    // DCT-II Parseval: sum x^2 = C_0^2/n + (2/n) sum_{k>=1} C_k^2.
    double timeE = 0.0;
    for (double v : x) timeE += v * v;
    double freqE = c[0] * c[0] / nD;
    for (std::size_t k = 1; k < n; ++k) freqE += 2.0 / nD * c[k] * c[k];
    EXPECT_NEAR(freqE, timeE, 1e-12 * nD * timeE) << "n=" << n;

    // Sine-synthesis Parseval (basis k<n-1 has energy n/2, the Nyquist
    // basis k=n-1 is the alternating +-1 sequence with energy n).
    const std::vector<double> sv = randomVector(n, 2000 + n);
    std::vector<double> ys = sv;
    plan.sineSynthesis(ys, s);
    double outE = 0.0;
    for (double v : ys) outE += v * v;
    double coefE = nD * sv[n - 1] * sv[n - 1];
    for (std::size_t k = 0; k + 1 < n; ++k) coefE += 0.5 * nD * sv[k] * sv[k];
    EXPECT_NEAR(outE, coefE, 1e-12 * nD * coefE) << "n=" << n;

    // Cosine-synthesis Parseval (DC basis has energy n, the rest n/2).
    std::vector<double> yc = sv;
    plan.cosineSynthesis(yc, s);
    outE = 0.0;
    for (double v : yc) outE += v * v;
    coefE = nD * sv[0] * sv[0];
    for (std::size_t k = 1; k < n; ++k) coefE += 0.5 * nD * sv[k] * sv[k];
    EXPECT_NEAR(outE, coefE, 1e-12 * nD * coefE) << "n=" << n;
  }
}

TEST(SpectralPlanProperties, MatchesReferenceDctWithinScaledUlps) {
  // New-vs-old parity: the planned pipeline is a different FP schedule than
  // the dct.h reference, so outputs are not bit-identical; they must agree
  // to a few ulps of the output magnitude at every solver size.
  constexpr double kEps = std::numeric_limits<double>::epsilon();
  for (const std::size_t n : kSolverSizes) {
    SpectralPlan plan(n);
    Dct ref(n);
    SpectralScratch s;
    const std::vector<double> x = randomVector(n, 3000 + n);
    for (const TrigOp op : {TrigOp::kDct2, TrigOp::kIdct2, TrigOp::kCosSynth,
                            TrigOp::kSinSynth}) {
      std::vector<double> a = x, b = x;
      plan.apply(op, a, s);
      switch (op) {
        case TrigOp::kDct2: ref.dct2(b); break;
        case TrigOp::kIdct2: ref.idct2(b); break;
        case TrigOp::kCosSynth: ref.cosineSynthesis(b); break;
        case TrigOp::kSinSynth: ref.sineSynthesis(b); break;
      }
      const double tol = 16.0 * kEps * std::max(1.0, maxAbs(b)) *
                         std::log2(static_cast<double>(n));
      for (std::size_t k = 0; k < n; ++k) {
        ASSERT_NEAR(a[k], b[k], tol)
            << "n=" << n << " op=" << static_cast<int>(op) << " k=" << k;
      }
    }
  }
}

TEST(SpectralPlanProperties, SynthesisPairMatchesSingleSyntheses) {
  constexpr double kEps = std::numeric_limits<double>::epsilon();
  for (const std::size_t n : kSolverSizes) {
    SpectralPlan plan(n);
    SpectralScratch s;
    const std::vector<double> a0 = randomVector(n, 4000 + n);
    const std::vector<double> b0 = randomVector(n, 5000 + n);
    for (const auto& [opA, opB] :
         {std::pair{TrigOp::kSinSynth, TrigOp::kCosSynth},
          std::pair{TrigOp::kCosSynth, TrigOp::kSinSynth},
          std::pair{TrigOp::kCosSynth, TrigOp::kCosSynth}}) {
      std::vector<double> aP = a0, bP = b0, aS = a0, bS = b0;
      plan.synthesisPair(aP, opA, bP, opB, s);
      plan.apply(opA, aS, s);
      plan.apply(opB, bS, s);
      const double tol = 32.0 * kEps *
                         std::max(1.0, std::max(maxAbs(aS), maxAbs(bS))) *
                         std::log2(static_cast<double>(n));
      for (std::size_t k = 0; k < n; ++k) {
        ASSERT_NEAR(aP[k], aS[k], tol) << "n=" << n << " k=" << k;
        ASSERT_NEAR(bP[k], bS[k], tol) << "n=" << n << " k=" << k;
      }
    }
  }
}

TEST(SpectralPlanProperties, ArenaBackedPlanBitIdenticalToOwnedPlan) {
  ScratchArena arena;
  for (const std::size_t n : {32u, 256u}) {
    SpectralPlan owned(n);
    SpectralPlan leased(n, &arena);
    SpectralScratch s;
    const std::vector<double> x = randomVector(n, 6000 + n);
    for (const TrigOp op : {TrigOp::kDct2, TrigOp::kIdct2, TrigOp::kCosSynth,
                            TrigOp::kSinSynth}) {
      std::vector<double> a = x, b = x;
      owned.apply(op, a, s);
      leased.apply(op, b, s);
      for (std::size_t k = 0; k < n; ++k) {
        ASSERT_EQ(std::bit_cast<std::uint64_t>(a[k]),
                  std::bit_cast<std::uint64_t>(b[k]))
            << "n=" << n << " op=" << static_cast<int>(op) << " k=" << k;
      }
    }
  }
  // A second same-size plan leases the SAME tables: no arena growth.
  const std::size_t buffers = arena.bufferCount();
  SpectralPlan again(256, &arena);
  EXPECT_EQ(arena.bufferCount(), buffers);
}

TEST(SpectralPlanProperties, Spectral2dParallelBitIdenticalToSerial) {
  const std::size_t nx = 64, ny = 32;
  const std::vector<double> grid = randomVector(nx * ny, 7000);
  SpectralPlan planX(nx), planY(ny);
  ThreadPool pool(4);
  for (const auto& [opX, opY] : {std::pair{TrigOp::kDct2, TrigOp::kDct2},
                                std::pair{TrigOp::kCosSynth, TrigOp::kCosSynth},
                                std::pair{TrigOp::kSinSynth, TrigOp::kCosSynth}}) {
    std::vector<double> a = grid, b = grid;
    Spectral2dWorkspace wsA, wsB;
    spectral2d(a, nx, ny, planX, planY, opX, opY, nullptr, &wsA);
    spectral2d(b, nx, ny, planX, planY, opX, opY, &pool, &wsB);
    for (std::size_t i = 0; i < a.size(); ++i) {
      ASSERT_EQ(std::bit_cast<std::uint64_t>(a[i]),
                std::bit_cast<std::uint64_t>(b[i]))
          << "bin " << i;
    }
  }
  // Batched field synthesis: same contract.
  std::vector<double> exA = grid, exB = grid;
  std::vector<double> eyA = randomVector(nx * ny, 7001), eyB = eyA;
  Spectral2dWorkspace wsA, wsB;
  spectralFieldSynthesis2d(exA, eyA, nx, ny, planX, planY, nullptr, &wsA);
  spectralFieldSynthesis2d(exB, eyB, nx, ny, planX, planY, &pool, &wsB);
  for (std::size_t i = 0; i < exA.size(); ++i) {
    ASSERT_EQ(std::bit_cast<std::uint64_t>(exA[i]),
              std::bit_cast<std::uint64_t>(exB[i]))
        << "ex bin " << i;
    ASSERT_EQ(std::bit_cast<std::uint64_t>(eyA[i]),
              std::bit_cast<std::uint64_t>(eyB[i]))
        << "ey bin " << i;
  }
}

// ---------- WA wirelength gradient vs finite differences ----------

TEST(WirelengthProperties, WaGradientMatchesFiniteDifferences) {
  for (const std::uint64_t seed : {701u, 702u, 703u}) {
    GenSpec spec;
    spec.name = "fd";
    spec.numCells = 40;
    spec.numIo = 8;
    spec.seed = seed;
    const PlacementDB db = generateCircuit(spec);

    const auto movables = db.movable();
    const std::size_t nVars = movables.size();
    std::vector<std::int32_t> objToVar(db.objects.size(), -1);
    std::vector<double> x(nVars), y(nVars);
    for (std::size_t v = 0; v < nVars; ++v) {
      const auto obj = static_cast<std::size_t>(movables[v]);
      objToVar[obj] = static_cast<std::int32_t>(v);
      const Point c = db.objects[obj].center();
      x[v] = c.x;
      y[v] = c.y;
    }
    const VarView view{&db, objToVar, x, y};
    const double gamma = 0.05 * db.region.width();
    std::vector<double> gx(nVars), gy(nVars);
    waWirelengthGrad(view, gamma, gamma, gx, gy);

    // Probe a handful of variables; each probe costs a full evaluation.
    const double h = 1e-6 * db.region.width();
    std::vector<double> dumpX(nVars), dumpY(nVars);
    std::mt19937_64 rng(seed);
    for (int probe = 0; probe < 6; ++probe) {
      const std::size_t v = rng() % nVars;
      const double x0 = x[v];
      x[v] = x0 + h;
      const double fPlus = waWirelengthGrad(view, gamma, gamma, dumpX, dumpY);
      x[v] = x0 - h;
      const double fMinus = waWirelengthGrad(view, gamma, gamma, dumpX, dumpY);
      x[v] = x0;
      const double fd = (fPlus - fMinus) / (2.0 * h);
      EXPECT_NEAR(gx[v], fd, 1e-4 * std::max(1.0, std::abs(fd)))
          << "seed " << seed << " var " << v;

      const double y0 = y[v];
      y[v] = y0 + h;
      const double gPlus = waWirelengthGrad(view, gamma, gamma, dumpX, dumpY);
      y[v] = y0 - h;
      const double gMinus = waWirelengthGrad(view, gamma, gamma, dumpX, dumpY);
      y[v] = y0;
      const double fdY = (gPlus - gMinus) / (2.0 * h);
      EXPECT_NEAR(gy[v], fdY, 1e-4 * std::max(1.0, std::abs(fdY)))
          << "seed " << seed << " var " << v;
    }
  }
}

TEST(WirelengthProperties, EvaluatorBitIdenticalToFreeFunctions) {
  GenSpec spec;
  spec.name = "weval";
  spec.numCells = 200;
  spec.seed = 704;
  const PlacementDB db = generateCircuit(spec);
  const auto movables = db.movable();
  const std::size_t nVars = movables.size();
  std::vector<std::int32_t> objToVar(db.objects.size(), -1);
  std::vector<double> x(nVars), y(nVars);
  for (std::size_t v = 0; v < nVars; ++v) {
    const auto obj = static_cast<std::size_t>(movables[v]);
    objToVar[obj] = static_cast<std::int32_t>(v);
    const Point c = db.objects[obj].center();
    x[v] = c.x;
    y[v] = c.y;
  }
  const VarView view{&db, objToVar, x, y};
  const double gamma = 1.7;
  std::vector<double> gxRef(nVars), gyRef(nVars), gxPar(nVars), gyPar(nVars);
  const double wlRef = waWirelengthGrad(view, gamma, gamma, gxRef, gyRef);
  const double hpwlRef = hpwl(view);

  WlEvaluator eval(db, objToVar, nVars);
  ThreadPool pool(4);
  for (ThreadPool* p : {static_cast<ThreadPool*>(nullptr), &pool}) {
    const double wl = eval.waGrad(view, gamma, gamma, gxPar, gyPar, p);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(wl),
              std::bit_cast<std::uint64_t>(wlRef));
    for (std::size_t v = 0; v < nVars; ++v) {
      EXPECT_EQ(std::bit_cast<std::uint64_t>(gxPar[v]),
                std::bit_cast<std::uint64_t>(gxRef[v]))
          << "var " << v;
      EXPECT_EQ(std::bit_cast<std::uint64_t>(gyPar[v]),
                std::bit_cast<std::uint64_t>(gyRef[v]))
          << "var " << v;
    }
    EXPECT_EQ(std::bit_cast<std::uint64_t>(eval.hpwl(view, p)),
              std::bit_cast<std::uint64_t>(hpwlRef));
  }
}

// ---------- ThreadPool contracts ----------

TEST(ThreadPoolProperties, PartitionsCoverEveryIndexOnce) {
  ThreadPool pool(4);
  const std::size_t n = 10007;  // prime: uneven partitions
  std::vector<int> hits(n, 0);
  pool.parallelFor(
      n,
      [&](std::size_t, std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i) ++hits[i];
      },
      1);
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(hits[i], 1) << "index " << i;
  }
}

TEST(ThreadPoolProperties, DeterministicReduceThreadCountInvariant) {
  const std::size_t n = 4096;
  const std::vector<double> data = randomVector(n, 801);
  auto f = [&](std::size_t i) { return data[i] * data[i] - 0.25 * data[i]; };
  double serialRef = 0.0;
  for (std::size_t i = 0; i < n; ++i) serialRef += f(i);

  std::vector<double> slots(n);
  ThreadPool one(1), four(4);
  const double a = one.deterministicReduce(n, slots, f);
  const double b = four.deterministicReduce(n, slots, f);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a), std::bit_cast<std::uint64_t>(b));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a),
            std::bit_cast<std::uint64_t>(serialRef));
}

TEST(ThreadPoolProperties, WorkerExceptionRethrownOnCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallelFor(
          1000,
          [&](std::size_t, std::size_t b, std::size_t e) {
            for (std::size_t i = b; i < e; ++i) {
              if (i == 777) throw std::runtime_error("boom");
            }
          },
          1),
      std::runtime_error);
  // The pool must survive the throw and keep serving work.
  std::vector<int> hits(100, 0);
  pool.parallelFor(
      100,
      [&](std::size_t, std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i) ++hits[i];
      },
      1);
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPoolProperties, TryParallelForConvertsThrowToStatus) {
  ThreadPool pool(2);
  const Status ok = pool.tryParallelFor(
      64, [](std::size_t, std::size_t, std::size_t) {});
  EXPECT_TRUE(ok.ok());
  const Status bad = pool.tryParallelFor(
      64, [](std::size_t, std::size_t b, std::size_t) {
        if (b == 0) throw std::runtime_error("task failed");
      });
  EXPECT_EQ(bad.code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace ep
