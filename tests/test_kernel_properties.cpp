// Property tests for the numeric kernels the placer's hot paths rely on:
// the radix-2 FFT and the trigonometric transforms against naive O(n^2)
// reference sums, the WA wirelength gradient against central finite
// differences, and the ThreadPool's partitioning/reduction/error contracts.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <complex>
#include <cstdint>
#include <numbers>
#include <random>
#include <stdexcept>
#include <vector>

#include "fft/dct.h"
#include "fft/fft.h"
#include "gen/generator.h"
#include "util/parallel.h"
#include "wirelength/wl.h"

namespace ep {
namespace {

std::vector<double> randomVector(std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::vector<double> v(n);
  for (auto& x : v) x = dist(rng);
  return v;
}

// ---------- FFT vs the naive DFT ----------

std::vector<Complex> naiveDft(const std::vector<Complex>& x) {
  const std::size_t n = x.size();
  std::vector<Complex> out(n);
  for (std::size_t k = 0; k < n; ++k) {
    Complex sum = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      const double ang = -2.0 * std::numbers::pi * static_cast<double>(j) *
                         static_cast<double>(k) / static_cast<double>(n);
      sum += x[j] * Complex(std::cos(ang), std::sin(ang));
    }
    out[k] = sum;
  }
  return out;
}

TEST(FftProperties, MatchesNaiveDftOnRandomSizes) {
  std::mt19937_64 rng(101);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  for (const std::size_t n : {2u, 8u, 16u, 64u, 128u, 256u}) {
    std::vector<Complex> x(n);
    for (auto& c : x) c = Complex(dist(rng), dist(rng));
    std::vector<Complex> fast = x;
    Fft fft(n);
    fft.forward(fast);
    const std::vector<Complex> ref = naiveDft(x);
    for (std::size_t k = 0; k < n; ++k) {
      EXPECT_NEAR(fast[k].real(), ref[k].real(),
                  1e-9 * static_cast<double>(n))
          << "n=" << n << " k=" << k;
      EXPECT_NEAR(fast[k].imag(), ref[k].imag(),
                  1e-9 * static_cast<double>(n))
          << "n=" << n << " k=" << k;
    }
  }
}

TEST(FftProperties, RoundTripIsIdentity) {
  std::mt19937_64 rng(102);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  for (const std::size_t n : {4u, 32u, 512u}) {
    std::vector<Complex> x(n);
    for (auto& c : x) c = Complex(dist(rng), dist(rng));
    std::vector<Complex> y = x;
    Fft fft(n);
    fft.forward(y);
    fft.inverse(y);
    for (std::size_t k = 0; k < n; ++k) {
      EXPECT_NEAR(y[k].real(), x[k].real(), 1e-12 * static_cast<double>(n));
      EXPECT_NEAR(y[k].imag(), x[k].imag(), 1e-12 * static_cast<double>(n));
    }
  }
}

TEST(FftProperties, ParsevalEnergyConservation) {
  for (const std::size_t n : {16u, 64u, 256u}) {
    std::mt19937_64 rng(103 + n);
    std::uniform_real_distribution<double> dist(-1.0, 1.0);
    std::vector<Complex> x(n);
    for (auto& c : x) c = Complex(dist(rng), dist(rng));
    double timeEnergy = 0.0;
    for (const auto& c : x) timeEnergy += std::norm(c);
    std::vector<Complex> X = x;
    Fft fft(n);
    fft.forward(X);
    double freqEnergy = 0.0;
    for (const auto& c : X) freqEnergy += std::norm(c);
    freqEnergy /= static_cast<double>(n);
    EXPECT_NEAR(freqEnergy, timeEnergy, 1e-9 * timeEnergy);
  }
}

// ---------- trigonometric transforms vs naive sums ----------

TEST(DctProperties, Dct2MatchesNaiveSum) {
  for (const std::size_t n : {8u, 32u, 128u}) {
    const std::vector<double> x = randomVector(n, 201 + n);
    std::vector<double> fast = x;
    Dct dct(n);
    dct.dct2(fast);
    for (std::size_t k = 0; k < n; ++k) {
      double ref = 0.0;
      for (std::size_t j = 0; j < n; ++j) {
        ref += x[j] * std::cos(std::numbers::pi *
                               (2.0 * static_cast<double>(j) + 1.0) *
                               static_cast<double>(k) /
                               (2.0 * static_cast<double>(n)));
      }
      EXPECT_NEAR(fast[k], ref, 1e-10 * static_cast<double>(n))
          << "n=" << n << " k=" << k;
    }
  }
}

TEST(DctProperties, Idct2InvertsDct2) {
  for (const std::size_t n : {8u, 64u, 256u}) {
    const std::vector<double> x = randomVector(n, 301 + n);
    std::vector<double> y = x;
    Dct dct(n);
    dct.dct2(y);
    dct.idct2(y);
    for (std::size_t j = 0; j < n; ++j) {
      EXPECT_NEAR(y[j], x[j], 1e-11 * static_cast<double>(n));
    }
  }
}

TEST(DctProperties, CosineSynthesisMatchesNaiveSum) {
  for (const std::size_t n : {8u, 32u}) {
    const std::vector<double> c = randomVector(n, 401 + n);
    std::vector<double> fast = c;
    Dct dct(n);
    dct.cosineSynthesis(fast);
    for (std::size_t j = 0; j < n; ++j) {
      double ref = 0.0;
      for (std::size_t k = 0; k < n; ++k) {
        ref += c[k] * std::cos(std::numbers::pi * static_cast<double>(k) *
                               (2.0 * static_cast<double>(j) + 1.0) /
                               (2.0 * static_cast<double>(n)));
      }
      EXPECT_NEAR(fast[j], ref, 1e-10 * static_cast<double>(n));
    }
  }
}

TEST(DctProperties, SineSynthesisMatchesNaiveSum) {
  for (const std::size_t n : {8u, 32u}) {
    const std::vector<double> s = randomVector(n, 501 + n);
    std::vector<double> fast = s;
    Dct dct(n);
    dct.sineSynthesis(fast);
    for (std::size_t j = 0; j < n; ++j) {
      double ref = 0.0;
      for (std::size_t k = 0; k < n; ++k) {
        ref += s[k] * std::sin(std::numbers::pi *
                               (static_cast<double>(k) + 1.0) *
                               (2.0 * static_cast<double>(j) + 1.0) /
                               (2.0 * static_cast<double>(n)));
      }
      EXPECT_NEAR(fast[j], ref, 1e-10 * static_cast<double>(n));
    }
  }
}

TEST(DctProperties, Transform2dParallelBitIdenticalToSerial) {
  const std::size_t nx = 32, ny = 16;
  const std::vector<double> grid = randomVector(nx * ny, 601);
  Dct dctX(nx), dctY(ny);
  std::vector<double> serial = grid;
  transform2d(serial, nx, ny, dctX, dctY, TrigOp::kDct2, TrigOp::kDct2);
  ThreadPool pool(4);
  for (const auto opPair :
       {std::pair{TrigOp::kDct2, TrigOp::kDct2},
        std::pair{TrigOp::kCosSynth, TrigOp::kSinSynth}}) {
    std::vector<double> a = grid, b = grid;
    transform2d(a, nx, ny, dctX, dctY, opPair.first, opPair.second);
    transform2d(b, nx, ny, dctX, dctY, opPair.first, opPair.second, &pool);
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(std::bit_cast<std::uint64_t>(a[i]),
                std::bit_cast<std::uint64_t>(b[i]))
          << "bin " << i;
    }
  }
}

// ---------- WA wirelength gradient vs finite differences ----------

TEST(WirelengthProperties, WaGradientMatchesFiniteDifferences) {
  for (const std::uint64_t seed : {701u, 702u, 703u}) {
    GenSpec spec;
    spec.name = "fd";
    spec.numCells = 40;
    spec.numIo = 8;
    spec.seed = seed;
    const PlacementDB db = generateCircuit(spec);

    const auto movables = db.movable();
    const std::size_t nVars = movables.size();
    std::vector<std::int32_t> objToVar(db.objects.size(), -1);
    std::vector<double> x(nVars), y(nVars);
    for (std::size_t v = 0; v < nVars; ++v) {
      const auto obj = static_cast<std::size_t>(movables[v]);
      objToVar[obj] = static_cast<std::int32_t>(v);
      const Point c = db.objects[obj].center();
      x[v] = c.x;
      y[v] = c.y;
    }
    const VarView view{&db, objToVar, x, y};
    const double gamma = 0.05 * db.region.width();
    std::vector<double> gx(nVars), gy(nVars);
    waWirelengthGrad(view, gamma, gamma, gx, gy);

    // Probe a handful of variables; each probe costs a full evaluation.
    const double h = 1e-6 * db.region.width();
    std::vector<double> dumpX(nVars), dumpY(nVars);
    std::mt19937_64 rng(seed);
    for (int probe = 0; probe < 6; ++probe) {
      const std::size_t v = rng() % nVars;
      const double x0 = x[v];
      x[v] = x0 + h;
      const double fPlus = waWirelengthGrad(view, gamma, gamma, dumpX, dumpY);
      x[v] = x0 - h;
      const double fMinus = waWirelengthGrad(view, gamma, gamma, dumpX, dumpY);
      x[v] = x0;
      const double fd = (fPlus - fMinus) / (2.0 * h);
      EXPECT_NEAR(gx[v], fd, 1e-4 * std::max(1.0, std::abs(fd)))
          << "seed " << seed << " var " << v;

      const double y0 = y[v];
      y[v] = y0 + h;
      const double gPlus = waWirelengthGrad(view, gamma, gamma, dumpX, dumpY);
      y[v] = y0 - h;
      const double gMinus = waWirelengthGrad(view, gamma, gamma, dumpX, dumpY);
      y[v] = y0;
      const double fdY = (gPlus - gMinus) / (2.0 * h);
      EXPECT_NEAR(gy[v], fdY, 1e-4 * std::max(1.0, std::abs(fdY)))
          << "seed " << seed << " var " << v;
    }
  }
}

TEST(WirelengthProperties, EvaluatorBitIdenticalToFreeFunctions) {
  GenSpec spec;
  spec.name = "weval";
  spec.numCells = 200;
  spec.seed = 704;
  const PlacementDB db = generateCircuit(spec);
  const auto movables = db.movable();
  const std::size_t nVars = movables.size();
  std::vector<std::int32_t> objToVar(db.objects.size(), -1);
  std::vector<double> x(nVars), y(nVars);
  for (std::size_t v = 0; v < nVars; ++v) {
    const auto obj = static_cast<std::size_t>(movables[v]);
    objToVar[obj] = static_cast<std::int32_t>(v);
    const Point c = db.objects[obj].center();
    x[v] = c.x;
    y[v] = c.y;
  }
  const VarView view{&db, objToVar, x, y};
  const double gamma = 1.7;
  std::vector<double> gxRef(nVars), gyRef(nVars), gxPar(nVars), gyPar(nVars);
  const double wlRef = waWirelengthGrad(view, gamma, gamma, gxRef, gyRef);
  const double hpwlRef = hpwl(view);

  WlEvaluator eval(db, objToVar, nVars);
  ThreadPool pool(4);
  for (ThreadPool* p : {static_cast<ThreadPool*>(nullptr), &pool}) {
    const double wl = eval.waGrad(view, gamma, gamma, gxPar, gyPar, p);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(wl),
              std::bit_cast<std::uint64_t>(wlRef));
    for (std::size_t v = 0; v < nVars; ++v) {
      EXPECT_EQ(std::bit_cast<std::uint64_t>(gxPar[v]),
                std::bit_cast<std::uint64_t>(gxRef[v]))
          << "var " << v;
      EXPECT_EQ(std::bit_cast<std::uint64_t>(gyPar[v]),
                std::bit_cast<std::uint64_t>(gyRef[v]))
          << "var " << v;
    }
    EXPECT_EQ(std::bit_cast<std::uint64_t>(eval.hpwl(view, p)),
              std::bit_cast<std::uint64_t>(hpwlRef));
  }
}

// ---------- ThreadPool contracts ----------

TEST(ThreadPoolProperties, PartitionsCoverEveryIndexOnce) {
  ThreadPool pool(4);
  const std::size_t n = 10007;  // prime: uneven partitions
  std::vector<int> hits(n, 0);
  pool.parallelFor(
      n,
      [&](std::size_t, std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i) ++hits[i];
      },
      1);
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(hits[i], 1) << "index " << i;
  }
}

TEST(ThreadPoolProperties, DeterministicReduceThreadCountInvariant) {
  const std::size_t n = 4096;
  const std::vector<double> data = randomVector(n, 801);
  auto f = [&](std::size_t i) { return data[i] * data[i] - 0.25 * data[i]; };
  double serialRef = 0.0;
  for (std::size_t i = 0; i < n; ++i) serialRef += f(i);

  std::vector<double> slots(n);
  ThreadPool one(1), four(4);
  const double a = one.deterministicReduce(n, slots, f);
  const double b = four.deterministicReduce(n, slots, f);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a), std::bit_cast<std::uint64_t>(b));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a),
            std::bit_cast<std::uint64_t>(serialRef));
}

TEST(ThreadPoolProperties, WorkerExceptionRethrownOnCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallelFor(
          1000,
          [&](std::size_t, std::size_t b, std::size_t e) {
            for (std::size_t i = b; i < e; ++i) {
              if (i == 777) throw std::runtime_error("boom");
            }
          },
          1),
      std::runtime_error);
  // The pool must survive the throw and keep serving work.
  std::vector<int> hits(100, 0);
  pool.parallelFor(
      100,
      [&](std::size_t, std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i) ++hits[i];
      },
      1);
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPoolProperties, TryParallelForConvertsThrowToStatus) {
  ThreadPool pool(2);
  const Status ok = pool.tryParallelFor(
      64, [](std::size_t, std::size_t, std::size_t) {});
  EXPECT_TRUE(ok.ok());
  const Status bad = pool.tryParallelFor(
      64, [](std::size_t, std::size_t b, std::size_t) {
        if (b == 0) throw std::runtime_error("task failed");
      });
  EXPECT_EQ(bad.code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace ep
