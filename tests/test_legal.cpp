#include <gtest/gtest.h>

#include "eval/metrics.h"
#include "gen/generator.h"
#include "legal/detail.h"
#include "legal/legalize.h"
#include "legal/mlg.h"
#include "qp/initial_place.h"
#include "util/rng.h"
#include "wirelength/wl.h"

namespace ep {
namespace {

/// A mixed-size instance with overlapping macros near their natural spots —
/// the state mLG expects after mGP.
PlacementDB mlgFixture(std::uint64_t seed) {
  GenSpec spec;
  spec.name = "mlgfix";
  spec.numCells = 400;
  spec.numMovableMacros = 8;
  spec.macroAreaFraction = 0.35;
  spec.utilization = 0.55;
  spec.seed = seed;
  PlacementDB db = generateCircuit(spec);
  // Push the macros toward the center so several overlap.
  Rng rng(seed + 1);
  for (auto i : db.movable()) {
    auto& o = db.objects[static_cast<std::size_t>(i)];
    if (o.kind != ObjKind::kMacro) continue;
    const Point c = db.region.center();
    o.setCenter(c.x + rng.uniform(-6, 6), c.y + rng.uniform(-6, 6));
  }
  return db;
}

std::vector<std::int32_t> macroIds(const PlacementDB& db) {
  std::vector<std::int32_t> ids;
  for (std::size_t i = 0; i < db.objects.size(); ++i) {
    if (!db.objects[i].fixed && db.objects[i].kind == ObjKind::kMacro) {
      ids.push_back(static_cast<std::int32_t>(i));
    }
  }
  return ids;
}

TEST(Mlg, RemovesMacroOverlap) {
  PlacementDB db = mlgFixture(3);
  const auto ids = macroIds(db);
  ASSERT_GT(pairwiseOverlapArea(db, ids), 0.0);
  const MlgResult res = legalizeMacros(db);
  EXPECT_TRUE(res.legal);
  EXPECT_NEAR(pairwiseOverlapArea(db, ids), 0.0, 1e-9);
  EXPECT_GT(res.overlapBefore, 0.0);
  EXPECT_NEAR(res.overlapAfter, 0.0, 1e-9);
}

TEST(Mlg, MacrosStayInRegionAndOnGrid) {
  PlacementDB db = mlgFixture(5);
  legalizeMacros(db);
  for (auto i : macroIds(db)) {
    const auto& o = db.objects[static_cast<std::size_t>(i)];
    EXPECT_TRUE(db.region.contains(o.rect())) << o.name;
    // Snapped to the site/row lattice.
    EXPECT_NEAR(o.lx, std::round(o.lx), 1e-9);
    EXPECT_NEAR(o.ly, std::round(o.ly), 1e-9);
  }
}

TEST(Mlg, OnlyLocalShifts) {
  // The paper's premise: mGP leaves macros near-legal, so mLG makes small
  // moves. Verify displacement stays well under the region size.
  PlacementDB db = mlgFixture(7);
  std::vector<Point> before;
  for (auto i : macroIds(db)) {
    before.push_back(db.objects[static_cast<std::size_t>(i)].center());
  }
  legalizeMacros(db);
  std::size_t k = 0;
  double sum = 0.0;
  for (auto i : macroIds(db)) {
    const Point after = db.objects[static_cast<std::size_t>(i)].center();
    sum += (after - before[k++]).norm();
  }
  const double mean = sum / static_cast<double>(k);
  EXPECT_LT(mean, 0.4 * db.region.width());
}

TEST(Mlg, DoesNotTouchCells) {
  PlacementDB db = mlgFixture(9);
  std::vector<double> cellX;
  for (auto i : db.movable()) {
    const auto& o = db.objects[static_cast<std::size_t>(i)];
    if (o.kind == ObjKind::kStdCell) cellX.push_back(o.lx);
  }
  legalizeMacros(db);
  std::size_t k = 0;
  for (auto i : db.movable()) {
    const auto& o = db.objects[static_cast<std::size_t>(i)];
    if (o.kind == ObjKind::kStdCell) {
      EXPECT_DOUBLE_EQ(o.lx, cellX[k++]);
    }
  }
}

TEST(Mlg, Deterministic) {
  PlacementDB a = mlgFixture(11);
  PlacementDB b = mlgFixture(11);
  legalizeMacros(a);
  legalizeMacros(b);
  for (std::size_t i = 0; i < a.objects.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.objects[i].lx, b.objects[i].lx);
    EXPECT_DOUBLE_EQ(a.objects[i].ly, b.objects[i].ly);
  }
}

TEST(Mlg, RotationExtensionStaysLegal) {
  PlacementDB db = mlgFixture(21);
  MlgConfig cfg;
  cfg.allowRotation = true;
  cfg.allowFlipping = true;
  const MlgResult res = legalizeMacros(db, cfg);
  EXPECT_TRUE(res.legal);
  EXPECT_NEAR(pairwiseOverlapArea(db, macroIds(db)), 0.0, 1e-9);
  for (auto i : macroIds(db)) {
    const auto& o = db.objects[static_cast<std::size_t>(i)];
    EXPECT_TRUE(db.region.contains(o.rect())) << o.name;
  }
}

TEST(Mlg, RotationPreservesMacroArea) {
  PlacementDB db = mlgFixture(23);
  std::vector<double> areas;
  for (auto i : macroIds(db)) {
    areas.push_back(db.objects[static_cast<std::size_t>(i)].area());
  }
  MlgConfig cfg;
  cfg.allowRotation = true;
  cfg.reorientProb = 0.5;
  legalizeMacros(db, cfg);
  std::size_t k = 0;
  for (auto i : macroIds(db)) {
    EXPECT_NEAR(db.objects[static_cast<std::size_t>(i)].area(), areas[k++],
                1e-9);
  }
}

TEST(Mlg, RotationKeepsHpwlBookkeepingConsistent) {
  // The annealer tracks W incrementally across rotations (which transform
  // pin offsets); the final recomputed HPWL must match a fresh evaluation.
  PlacementDB db = mlgFixture(25);
  MlgConfig cfg;
  cfg.allowRotation = true;
  cfg.allowFlipping = true;
  const MlgResult res = legalizeMacros(db, cfg);
  EXPECT_NEAR(res.hpwlAfter, hpwl(db), 1e-6 * res.hpwlAfter);
}

TEST(Mlg, NoMacrosIsTrivialSuccess) {
  GenSpec spec;
  spec.numCells = 100;
  PlacementDB db = generateCircuit(spec);
  const MlgResult res = legalizeMacros(db);
  EXPECT_TRUE(res.legal);
  EXPECT_EQ(res.outerIterations, 0);
}

PlacementDB legalizeFixture(std::uint64_t seed, std::size_t cells = 500) {
  GenSpec spec;
  spec.name = "legfix";
  spec.numCells = cells;
  spec.numFixedMacros = 3;
  spec.utilization = 0.6;
  spec.seed = seed;
  PlacementDB db = generateCircuit(spec);
  quadraticInitialPlace(db);  // overlapping but sane start
  return db;
}

TEST(Legalize, ProducesLegalLayout) {
  PlacementDB db = legalizeFixture(2);
  const LegalizeResult res = legalizeCells(db);
  EXPECT_TRUE(res.success);
  const auto rep = checkLegality(db);
  EXPECT_TRUE(rep.legal) << rep.firstIssue;
}

TEST(Legalize, ReportsDisplacement) {
  PlacementDB db = legalizeFixture(4);
  const LegalizeResult res = legalizeCells(db);
  EXPECT_GT(res.avgDisplacement, 0.0);
  EXPECT_GE(res.maxDisplacement, res.avgDisplacement);
}

TEST(Legalize, RespectsFixedObstacles) {
  PlacementDB db = legalizeFixture(6);
  legalizeCells(db);
  for (auto i : db.movable()) {
    const auto& o = db.objects[static_cast<std::size_t>(i)];
    for (const auto& f : db.objects) {
      if (!f.fixed) continue;
      EXPECT_LT(o.rect().overlapArea(f.rect()), 1e-9)
          << o.name << " overlaps " << f.name;
    }
  }
}

TEST(Legalize, NearlyLegalInputMovesLittle) {
  // A layout that is already legal must barely move.
  PlacementDB db = legalizeFixture(8, 200);
  legalizeCells(db);
  const double h1 = hpwl(db);
  const LegalizeResult res2 = legalizeCells(db);
  EXPECT_LT(res2.avgDisplacement, 1.0);
  EXPECT_NEAR(hpwl(db), h1, 0.05 * h1);
}

TEST(Detail, ImprovesOrKeepsHpwlAndStaysLegal) {
  PlacementDB db = legalizeFixture(10);
  legalizeCells(db);
  ASSERT_TRUE(checkLegality(db).legal);
  const DetailResult res = detailPlace(db);
  EXPECT_LE(res.hpwlAfter, res.hpwlBefore + 1e-9);
  const auto rep = checkLegality(db);
  EXPECT_TRUE(rep.legal) << rep.firstIssue;
}

TEST(Detail, ActuallyFindsImprovements) {
  PlacementDB db = legalizeFixture(12);
  legalizeCells(db);
  const DetailResult res = detailPlace(db);
  EXPECT_GT(res.reorders + res.swaps, 0);
  EXPECT_LT(res.hpwlAfter, res.hpwlBefore);
}

TEST(Detail, Deterministic) {
  PlacementDB a = legalizeFixture(14);
  PlacementDB b = legalizeFixture(14);
  legalizeCells(a);
  legalizeCells(b);
  detailPlace(a);
  detailPlace(b);
  for (std::size_t i = 0; i < a.objects.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.objects[i].lx, b.objects[i].lx);
  }
}

TEST(Detail, SwapFixesObviouslyCrossedPair) {
  // Two same-size cells placed on each other's ideal rows: a single swap
  // recovers the optimum.
  PlacementDB db;
  db.region = {0, 0, 20, 4};
  for (int r = 0; r < 4; ++r) {
    db.rows.push_back({0, static_cast<double>(r), 1.0, 1.0, 20});
  }
  auto add = [&](const char* name, double lx, double ly, bool fixed) {
    Object o;
    o.name = name;
    o.w = 1;
    o.h = 1;
    o.lx = lx;
    o.ly = ly;
    o.fixed = fixed;
    if (fixed) o.kind = ObjKind::kIo;
    db.objects.push_back(o);
  };
  add("a", 2, 3, false);   // wants to be near padTop... placed at bottom pad
  add("b", 2, 0, false);
  add("padTop", 2, 3, true);
  add("padBot", 2, 0, true);
  // a connects to padBot, b connects to padTop: crossed.
  db.objects[2].lx = 10;  // pads to the right so nets are nondegenerate
  db.objects[3].lx = 10;
  db.nets.push_back({"na", {{0, 0, 0}, {3, 0, 0}}, 1.0});
  db.nets.push_back({"nb", {{1, 0, 0}, {2, 0, 0}}, 1.0});
  db.finalize();
  const double before = hpwl(db);
  const DetailResult res = detailPlace(db);
  EXPECT_GT(res.swaps, 0);
  EXPECT_LT(res.hpwlAfter, before);
  // After the swap, each cell sits on its pad's row: HPWL = 2 * 8.
  EXPECT_NEAR(res.hpwlAfter, 16.0, 1e-9);
}

TEST(Detail, ZeroPassesIsNoop) {
  PlacementDB db = legalizeFixture(16, 100);
  legalizeCells(db);
  DetailConfig cfg;
  cfg.maxPasses = 0;
  const DetailResult res = detailPlace(db, cfg);
  EXPECT_EQ(res.passes, 0);
  EXPECT_DOUBLE_EQ(res.hpwlAfter, res.hpwlBefore);
}

}  // namespace
}  // namespace ep
