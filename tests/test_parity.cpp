// Refactor-parity suite (ctest label: parity).
//
// The flat SoA core (PlacementView) replaced the per-consumer CSR builds
// and per-run geometry copies. This suite pins the refactor to the
// pre-refactor behavior:
//
//  * the three committed mGP goldens reproduce EXACTLY (bit-for-bit at the
//    metric level, not within the cross-platform tolerance the golden
//    suite uses) at 1 and at 4 threads, with bit-identical positions
//    across the two thread counts;
//  * the view's CSRs agree with a naive per-net rebuild from the AoS nets;
//  * the movable remap round-trips;
//  * the scratch arena reuses buffers without growth once warmed up, and
//    a second GlobalPlacer run on the same view allocates nothing new
//    (cGP after mGP reuses mGP's arena leases).
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "eplace/global_placer.h"
#include "fft/poisson.h"
#include "gen/generator.h"
#include "model/netlist.h"
#include "qp/initial_place.h"
#include "util/context.h"

namespace ep {
namespace {

#ifndef EP_GOLDEN_DIR
#error "EP_GOLDEN_DIR must point at tests/goldens (set in CMakeLists.txt)"
#endif

struct GoldenCase {
  std::uint64_t seed;
  std::size_t cells;
};

// Must stay in lockstep with kCases in test_golden.cpp — the parity suite
// replays the exact committed scenarios.
constexpr GoldenCase kCases[] = {{31, 400}, {32, 500}, {33, 600}};

struct RunOutcome {
  std::vector<double> positions;
  double hpwl = 0.0;
  double overflow = 0.0;
  int iterations = 0;
};

std::vector<double> movablePositions(const PlacementDB& db) {
  std::vector<double> v;
  for (auto i : db.movable()) {
    const Point c = db.objects[static_cast<std::size_t>(i)].center();
    v.push_back(c.x);
    v.push_back(c.y);
  }
  return v;
}

void expectBitIdentical(const std::vector<double>& a,
                        const std::vector<double>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a[i]),
              std::bit_cast<std::uint64_t>(b[i]))
        << "coordinate " << i << ": " << a[i] << " vs " << b[i];
  }
}

RunOutcome runMgp(const GoldenCase& c, int threads) {
  RuntimeContext ctx(threads);
  GenSpec spec;
  spec.name = "golden";  // same generator stream as the golden suite
  spec.numCells = c.cells;
  spec.seed = c.seed;
  PlacementDB db = generateCircuit(spec);
  quadraticInitialPlace(db, {}, &ctx);
  GlobalPlacer gp(db, db.movable(), GpConfig{}, &ctx);
  gp.makeFillersFromDb();
  const GpResult res = gp.run();
  EXPECT_TRUE(res.status.ok()) << res.status.toString();
  return {movablePositions(db), res.finalHpwl, res.finalOverflow,
          res.iterations};
}

/// Flat one-object JSON extractor (same format test_golden.cpp writes).
bool jsonNumber(const std::string& text, const std::string& key,
                double* out) {
  const std::string needle = "\"" + key + "\":";
  const auto pos = text.find(needle);
  if (pos == std::string::npos) return false;
  *out = std::strtod(text.c_str() + pos + needle.size(), nullptr);
  return true;
}

class GoldenParity : public ::testing::TestWithParam<int> {};

// Positions bit-identical across thread counts, and the metrics equal the
// committed goldens exactly: %.17g round-trips doubles, so on the platform
// that recorded the goldens any difference at all is a refactor regression.
TEST_P(GoldenParity, BitIdenticalToCommittedGolden) {
  const GoldenCase& c = kCases[GetParam()];
  const RunOutcome t1 = runMgp(c, 1);
  const RunOutcome t4 = runMgp(c, 4);

  expectBitIdentical(t1.positions, t4.positions);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(t1.hpwl),
            std::bit_cast<std::uint64_t>(t4.hpwl));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(t1.overflow),
            std::bit_cast<std::uint64_t>(t4.overflow));
  EXPECT_EQ(t1.iterations, t4.iterations);

  const std::string path = std::string(EP_GOLDEN_DIR) + "/mgp_seed" +
                           std::to_string(c.seed) + ".json";
  std::ifstream f(path);
  ASSERT_TRUE(f.good()) << "missing golden " << path;
  std::stringstream ss;
  ss << f.rdbuf();
  const std::string text = ss.str();

  double goldHpwl = 0.0, goldOverflow = 0.0, goldIters = 0.0;
  ASSERT_TRUE(jsonNumber(text, "hpwl", &goldHpwl));
  ASSERT_TRUE(jsonNumber(text, "overflow", &goldOverflow));
  ASSERT_TRUE(jsonNumber(text, "iterations", &goldIters));

  EXPECT_EQ(std::bit_cast<std::uint64_t>(t1.hpwl),
            std::bit_cast<std::uint64_t>(goldHpwl))
      << "seed " << c.seed << ": HPWL " << t1.hpwl << " vs golden "
      << goldHpwl;
  EXPECT_EQ(std::bit_cast<std::uint64_t>(t1.overflow),
            std::bit_cast<std::uint64_t>(goldOverflow))
      << "seed " << c.seed << ": overflow " << t1.overflow << " vs golden "
      << goldOverflow;
  EXPECT_EQ(t1.iterations, static_cast<int>(goldIters));
}

INSTANTIATE_TEST_SUITE_P(Seeds, GoldenParity, ::testing::Values(0, 1, 2));

// ---------------------------------------------------------------------------
// PlacementView structure tests
// ---------------------------------------------------------------------------

PlacementDB testCircuit(std::uint64_t seed = 7, std::size_t cells = 250) {
  GenSpec spec;
  spec.name = "parity";
  spec.numCells = cells;
  spec.numMovableMacros = 2;
  spec.seed = seed;
  return generateCircuit(spec);
}

TEST(PlacementViewCsr, MatchesNaiveRebuild) {
  PlacementDB db = testCircuit();
  const PlacementView& pv = db.view();
  ASSERT_TRUE(pv.built());

  // Naive rebuild straight from the AoS nets.
  std::vector<std::int32_t> netPinStart{0}, pinObj, pinNet;
  std::vector<double> pinOx, pinOy;
  std::vector<std::vector<std::int32_t>> objPins(db.objects.size());
  std::vector<std::vector<std::int32_t>> objNets(db.objects.size());
  std::int32_t pid = 0;
  for (std::size_t n = 0; n < db.nets.size(); ++n) {
    for (const auto& p : db.nets[n].pins) {
      pinObj.push_back(p.obj);
      pinOx.push_back(p.ox);
      pinOy.push_back(p.oy);
      pinNet.push_back(static_cast<std::int32_t>(n));
      objPins[static_cast<std::size_t>(p.obj)].push_back(pid++);
      objNets[static_cast<std::size_t>(p.obj)].push_back(
          static_cast<std::int32_t>(n));
    }
    netPinStart.push_back(pid);
  }

  ASSERT_EQ(pv.numPins(), pinObj.size());
  ASSERT_EQ(pv.numNets(), db.nets.size());
  for (std::size_t i = 0; i < netPinStart.size(); ++i) {
    EXPECT_EQ(pv.netPinStart()[i], netPinStart[i]);
  }
  for (std::size_t i = 0; i < pinObj.size(); ++i) {
    EXPECT_EQ(pv.pinObj()[i], pinObj[i]);
    EXPECT_EQ(pv.pinNet()[i], pinNet[i]);
    EXPECT_EQ(pv.pinOx()[i], pinOx[i]);
    EXPECT_EQ(pv.pinOy()[i], pinOy[i]);
  }
  for (std::size_t o = 0; o < db.objects.size(); ++o) {
    const auto b = static_cast<std::size_t>(pv.objPinStart()[o]);
    const auto e = static_cast<std::size_t>(pv.objPinStart()[o + 1]);
    ASSERT_EQ(e - b, objPins[o].size()) << "object " << o;
    for (std::size_t k = 0; k < objPins[o].size(); ++k) {
      EXPECT_EQ(pv.objPinIds()[b + k], objPins[o][k]);
    }
    const auto nets = pv.netsOf(static_cast<std::int32_t>(o));
    ASSERT_EQ(nets.size(), objNets[o].size()) << "object " << o;
    for (std::size_t k = 0; k < objNets[o].size(); ++k) {
      EXPECT_EQ(nets[k], objNets[o][k]);
    }
  }

  // Geometry mirrors.
  for (std::size_t o = 0; o < db.objects.size(); ++o) {
    const auto& obj = db.objects[o];
    EXPECT_EQ(pv.w()[o], obj.w);
    EXPECT_EQ(pv.h()[o], obj.h);
    EXPECT_EQ(pv.area()[o], obj.area());
    EXPECT_EQ(pv.lx()[o], obj.lx);
    EXPECT_EQ(pv.ly()[o], obj.ly);
    EXPECT_EQ(pv.kind()[o], static_cast<std::uint8_t>(obj.kind));
    EXPECT_EQ(pv.fixedMask()[o] != 0, obj.fixed);
  }
}

TEST(PlacementViewCsr, RemapRoundTrip) {
  PlacementDB db = testCircuit();
  const PlacementView& pv = db.view();
  ASSERT_EQ(pv.numMovable(), db.movable().size());

  for (std::size_t v = 0; v < pv.numMovable(); ++v) {
    const auto obj = pv.movable()[v];
    EXPECT_EQ(obj, db.movable()[v]);
    EXPECT_EQ(pv.objToMovable()[static_cast<std::size_t>(obj)],
              static_cast<std::int32_t>(v));
  }
  for (std::size_t o = 0; o < db.objects.size(); ++o) {
    const auto slot = pv.objToMovable()[o];
    if (db.objects[o].fixed) {
      EXPECT_EQ(slot, -1);
    } else {
      ASSERT_GE(slot, 0);
      EXPECT_EQ(pv.movable()[static_cast<std::size_t>(slot)],
                static_cast<std::int32_t>(o));
    }
  }
}

TEST(PlacementViewCsr, PositionSyncRoundTrip) {
  PlacementDB db = testCircuit();
  PlacementView& pv = db.view();
  for (auto i : db.movable()) {
    auto& o = db.objects[static_cast<std::size_t>(i)];
    o.lx += 1.25;
    o.ly -= 0.5;
  }
  pv.syncPositionsFromDb(db);
  for (std::size_t o = 0; o < db.objects.size(); ++o) {
    EXPECT_EQ(pv.lx()[o], db.objects[o].lx);
    EXPECT_EQ(pv.ly()[o], db.objects[o].ly);
  }
  pv.setPosition(db.movable().front(), 3.0, 4.0);
  pv.pushPositionsToDb(db);
  EXPECT_EQ(db.objects[static_cast<std::size_t>(db.movable().front())].lx,
            3.0);
  EXPECT_EQ(db.objects[static_cast<std::size_t>(db.movable().front())].ly,
            4.0);
}

// ---------------------------------------------------------------------------
// ScratchArena tests
// ---------------------------------------------------------------------------

TEST(ScratchArena, ReusesBuffersWithoutGrowth) {
  ScratchArena arena;
  EXPECT_EQ(arena.growthEvents(), 0);

  auto a = arena.doubles("k.a", 1000);
  auto b = arena.ints("k.b", 500);
  EXPECT_EQ(a.size(), 1000u);
  EXPECT_EQ(b.size(), 500u);
  const long warm = arena.growthEvents();
  EXPECT_GT(warm, 0);
  EXPECT_EQ(arena.bufferCount(), 2u);

  // Same or smaller requests after warm-up: same storage, zero growth.
  for (int it = 0; it < 10; ++it) {
    auto a2 = arena.doubles("k.a", 1000);
    auto b2 = arena.ints("k.b", it % 2 ? 500 : 100);
    EXPECT_EQ(a2.data(), a.data());
    EXPECT_EQ(b2.data(), b.data());
  }
  EXPECT_EQ(arena.growthEvents(), warm);

  // Outgrowing a key is counted.
  arena.doubles("k.a", 2000);
  EXPECT_GT(arena.growthEvents(), warm);
}

// The spectral Poisson solver leases its plan tables ("fft.<n>.*") and
// per-solve buffers ("fft.pre"/"fft.coeff"/"fft.psi"/"fft.ex"/"fft.ey")
// from the arena. Construction plus the first solve are the warm-up;
// every later solve must be allocation-free as observed by the arena.
TEST(ScratchArena, PoissonSolverSteadyStateNeverGrows) {
  ScratchArena arena;
  const std::size_t nx = 64, ny = 32;
  std::vector<double> rho(nx * ny);
  for (std::size_t b = 0; b < rho.size(); ++b) {
    rho[b] = 0.5 + 0.25 * static_cast<double>(b % 7) -
             0.125 * static_cast<double>(b % 3);
  }
  {
    PoissonSolver solver(nx, ny, 1.0, 1.0, &arena);
    solver.solve(rho, nullptr);
    const long warm = arena.growthEvents();
    EXPECT_GT(warm, 0);
    const std::size_t buffers = arena.bufferCount();
    for (int it = 0; it < 5; ++it) solver.solve(rho, nullptr);
    EXPECT_EQ(arena.growthEvents(), warm)
        << "steady-state solve() grew an arena buffer";
    EXPECT_EQ(arena.bufferCount(), buffers);
  }
  // A successor solver of the same grid size (cGP after mGP) re-leases the
  // exact same keys: zero growth even across solver lifetimes.
  const long warm = arena.growthEvents();
  PoissonSolver next(nx, ny, 1.0, 1.0, &arena);
  next.solve(rho, nullptr);
  EXPECT_EQ(arena.growthEvents(), warm)
      << "same-size successor solver re-allocated instead of re-leasing";
}

// The Nesterov loop's zero-steady-state-allocation contract, observed via
// the arena: after the first GlobalPlacer run warms the view's arena up, a
// second run over the same view (what cGP does after mGP) must not grow
// any buffer.
TEST(ScratchArena, SecondGpRunReusesFirstRunsBuffers) {
  RuntimeContext ctx(1);
  PlacementDB db = testCircuit(11, 200);
  quadraticInitialPlace(db, {}, &ctx);

  GpConfig cfg;
  cfg.maxIterations = 30;
  {
    GlobalPlacer gp(db, db.movable(), cfg, &ctx);
    gp.makeFillersFromDb();
    (void)gp.run();
  }
  const long warm = db.view().arena().growthEvents();
  EXPECT_GT(warm, 0);

  {
    GlobalPlacer gp(db, db.movable(), cfg, &ctx);
    gp.makeFillersFromDb();
    (void)gp.run();
  }
  EXPECT_EQ(db.view().arena().growthEvents(), warm)
      << "second GP run allocated fresh scratch instead of reusing the "
         "arena warmed by the first run";
}

}  // namespace
}  // namespace ep
