// Serve-layer unit tests: the jsonlite codec, the request parser and its
// corpus of malformed lines, a seeded mutation fuzzer (every corrupted line
// must yield Ok or a typed kInvalidInput — never a crash or a wrong-kind
// status), the bounded AdmissionQueue contract, and JobStore journal
// round-trips including corrupt-entry recovery.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "serve/journal.h"
#include "serve/jsonlite.h"
#include "serve/protocol.h"
#include "serve/queue.h"
#include "util/rng.h"
#include "util/status.h"

namespace fs = std::filesystem;
using namespace ep;
using namespace ep::serve;

// ---------------------------------------------------------------------------
// jsonlite

TEST(JsonLite, RoundTripsScalars) {
  for (const std::string text :
       {"null", "true", "false", "0", "-1", "3.25", "\"hi\"", "[]", "{}",
        "[1,2,3]", "{\"a\":1,\"b\":[true,null]}"}) {
    auto v = parseJson(text);
    ASSERT_TRUE(v.ok()) << text;
    EXPECT_EQ(writeJson(*v), text) << text;
  }
}

TEST(JsonLite, IntegralDoublesRoundTripExactly) {
  // Job ids travel as JSON numbers; 2^53-1 must survive a round trip.
  const std::uint64_t big = (1ULL << 53) - 1;
  JsonValue v = JsonValue::number(static_cast<double>(big));
  auto back = parseJson(writeJson(v));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(static_cast<std::uint64_t>(back->asNumber()), big);
}

TEST(JsonLite, StringEscapes) {
  auto v = parseJson("\"a\\n\\t\\\"\\\\b\\u0041\\u00e9\"");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->asString(), "a\n\t\"\\bA\xc3\xa9");
  // Control characters re-escape on output.
  const std::string out = writeJson(*v);
  EXPECT_NE(out.find("\\n"), std::string::npos);
  auto again = parseJson(out);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->asString(), v->asString());
}

TEST(JsonLite, SurrogatePairs) {
  auto v = parseJson("\"\\ud83d\\ude00\"");  // U+1F600
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->asString(), "\xf0\x9f\x98\x80");
  // A lone high surrogate is malformed.
  EXPECT_FALSE(parseJson("\"\\ud83d\"").ok());
}

TEST(JsonLite, RejectsMalformed) {
  for (const std::string text :
       {"", "{", "}", "[1,", "{\"a\"}", "{\"a\":}", "tru", "nul", "01",
        "1.2.3", "\"unterminated", "{\"a\":1,}", "[1 2]", "{\"a\" 1}",
        "\"bad\\q\"", "1e999", "nan", "inf", "{\"a\":1}x", "[1]tail"}) {
    auto v = parseJson(text);
    EXPECT_FALSE(v.ok()) << "accepted: " << text;
    if (!v.ok()) {
      EXPECT_EQ(v.status().code(), StatusCode::kInvalidInput) << text;
    }
  }
}

TEST(JsonLite, DepthLimitBoundsRecursion) {
  std::string deep;
  for (int i = 0; i < 200; ++i) deep += "[";
  deep += "1";
  for (int i = 0; i < 200; ++i) deep += "]";
  auto v = parseJson(deep);
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kInvalidInput);
  // Within the limit it parses fine.
  EXPECT_TRUE(parseJson("[[[[[[[[1]]]]]]]]").ok());
}

TEST(JsonLite, NonFiniteSerializesAsNull) {
  EXPECT_EQ(writeJson(JsonValue::number(std::nan(""))), "null");
  EXPECT_EQ(writeJson(JsonValue::number(HUGE_VAL)), "null");
}

TEST(JsonLite, SetOverwritesPreservingOrder) {
  JsonValue o = JsonValue::object();
  o.set("a", JsonValue::number(1));
  o.set("b", JsonValue::number(2));
  o.set("a", JsonValue::number(3));
  EXPECT_EQ(writeJson(o), "{\"a\":3,\"b\":2}");
}

// ---------------------------------------------------------------------------
// Request parser corpus

TEST(Protocol, ParsesEveryOp) {
  struct Case {
    const char* line;
    Request::Op op;
  };
  const Case cases[] = {
      {"{\"op\":\"ping\"}", Request::Op::kPing},
      {"{\"op\":\"submit\",\"job\":{\"gen\":{\"cells\":100}}}",
       Request::Op::kSubmit},
      {"{\"op\":\"cancel\",\"id\":7}", Request::Op::kCancel},
      {"{\"op\":\"result\",\"id\":7}", Request::Op::kResult},
      {"{\"op\":\"wait\",\"id\":7,\"timeout\":1.5}", Request::Op::kWait},
      {"{\"op\":\"watch\",\"id\":7}", Request::Op::kWatch},
      {"{\"op\":\"stats\"}", Request::Op::kStats},
      {"{\"op\":\"shutdown\"}", Request::Op::kShutdown},
  };
  for (const Case& c : cases) {
    auto r = parseRequestLine(c.line);
    ASSERT_TRUE(r.ok()) << c.line << ": " << r.status().toString();
    EXPECT_EQ(r->op, c.op) << c.line;
  }
}

TEST(Protocol, MalformedCorpusYieldsTypedInvalidInput) {
  const char* corpus[] = {
      "",
      "   ",
      "{",
      "not json",
      "[1,2,3]",                      // not an object
      "42",                           // not an object
      "{\"op\":42}",                  // op not a string
      "{\"op\":\"fly\"}",             // unknown op
      "{\"id\":1}",                   // no op at all
      "{\"op\":\"submit\"}",          // submit without job
      "{\"op\":\"submit\",\"job\":42}",
      "{\"op\":\"submit\",\"job\":{}}",  // neither aux nor gen
      "{\"op\":\"submit\",\"job\":{\"aux\":\"a\",\"gen\":{}}}",  // both
      "{\"op\":\"submit\",\"job\":{\"gen\":{\"cells\":0}}}",
      "{\"op\":\"submit\",\"job\":{\"gen\":{\"cells\":-4}}}",
      "{\"op\":\"submit\",\"job\":{\"gen\":{\"cells\":9000000}}}",
      "{\"op\":\"submit\",\"job\":{\"gen\":{\"cells\":100},"
      "\"threads\":0}}",
      "{\"op\":\"submit\",\"job\":{\"gen\":{\"cells\":100},"
      "\"threads\":9999}}",
      "{\"op\":\"submit\",\"job\":{\"gen\":{\"cells\":100},"
      "\"priority\":1.5}}",
      "{\"op\":\"submit\",\"job\":{\"gen\":{\"cells\":100},"
      "\"inject\":[{\"site\":\"x\",\"kind\":\"meteor\"}]}}",
      "{\"op\":\"cancel\"}",           // id required
      "{\"op\":\"cancel\",\"id\":-1}",
      "{\"op\":\"cancel\",\"id\":1.5}",
      "{\"op\":\"cancel\",\"id\":\"seven\"}",
      "{\"op\":\"wait\",\"id\":1e300}",  // above 2^53
  };
  for (const char* line : corpus) {
    auto r = parseRequestLine(line);
    EXPECT_FALSE(r.ok()) << "accepted: " << line;
    if (!r.ok()) {
      EXPECT_EQ(r.status().code(), StatusCode::kInvalidInput) << line;
    }
  }
}

TEST(Protocol, OversizedLineRejectedBeforeParsing) {
  std::string line = "{\"op\":\"ping\",\"pad\":\"";
  line.append(1000, 'x');
  line += "\"}";
  EXPECT_TRUE(parseRequestLine(line).ok());
  auto r = parseRequestLine(line, /*maxBytes=*/100);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidInput);
}

TEST(Protocol, EmbeddedNulBytesRejected) {
  std::string line = "{\"op\":\"ping\"}";
  line[3] = '\0';
  EXPECT_FALSE(parseRequestLine(line).ok());
}

TEST(Protocol, JobSpecRoundTrip) {
  JobSpec spec;
  spec.name = "round_trip";
  spec.hasGen = true;
  spec.gen.numCells = 1234;
  spec.gen.numMovableMacros = 3;
  spec.gen.seed = 99;
  spec.priority = -2;
  spec.deadlineSeconds = 4.5;
  spec.threads = 4;
  spec.saveEvery = 10;
  spec.gpMaxIterations = 77;
  spec.runDetail = false;
  InjectSpec inj;
  inj.site = "nesterov.grad";
  inj.spec.kind = FaultKind::kSpike;
  inj.spec.atTick = 12;
  inj.spec.count = 3;
  inj.spec.magnitude = 2.5;
  spec.injections.push_back(inj);

  JobSpec back;
  ASSERT_TRUE(jobSpecFromJson(jobSpecToJson(spec), &back).ok());
  EXPECT_EQ(back.name, spec.name);
  EXPECT_TRUE(back.hasGen);
  EXPECT_EQ(back.gen.numCells, spec.gen.numCells);
  EXPECT_EQ(back.gen.numMovableMacros, spec.gen.numMovableMacros);
  EXPECT_EQ(back.gen.seed, spec.gen.seed);
  EXPECT_EQ(back.priority, spec.priority);
  EXPECT_DOUBLE_EQ(back.deadlineSeconds, spec.deadlineSeconds);
  EXPECT_EQ(back.threads, spec.threads);
  EXPECT_EQ(back.saveEvery, spec.saveEvery);
  EXPECT_EQ(back.gpMaxIterations, spec.gpMaxIterations);
  EXPECT_EQ(back.runDetail, spec.runDetail);
  ASSERT_EQ(back.injections.size(), 1u);
  EXPECT_EQ(back.injections[0].site, "nesterov.grad");
  EXPECT_EQ(back.injections[0].spec.kind, FaultKind::kSpike);
  EXPECT_EQ(back.injections[0].spec.atTick, 12);
  EXPECT_EQ(back.injections[0].spec.count, 3);
  EXPECT_DOUBLE_EQ(back.injections[0].spec.magnitude, 2.5);
}

TEST(Protocol, OutcomeRoundTripPreservesHpwlBits) {
  JobOutcome out;
  out.id = 41;
  out.name = "x";
  out.status = Status::cancelled("client asked");
  out.finalHpwl = 1.0 / 3.0;
  out.hpwlBits = std::bit_cast<std::uint64_t>(out.finalHpwl);
  out.legal = true;
  out.wallSeconds = 0.25;
  out.queueWaitSeconds = 0.125;
  out.retries = 2;
  out.recoveries = 1;
  out.resumed = true;

  JobOutcome back;
  ASSERT_TRUE(outcomeFromJson(outcomeToJson(out), &back).ok());
  EXPECT_EQ(back.id, out.id);
  EXPECT_EQ(back.status.code(), StatusCode::kCancelled);
  // The double travels as text AND as a bit pattern; the bit pattern is
  // authoritative and must be exact.
  EXPECT_EQ(back.hpwlBits, out.hpwlBits);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(back.finalHpwl), out.hpwlBits);
  EXPECT_TRUE(back.legal);
  EXPECT_EQ(back.retries, 2);
  EXPECT_EQ(back.recoveries, 1);
  EXPECT_TRUE(back.resumed);
}

TEST(Protocol, HexBitsRoundTrip) {
  for (const std::uint64_t bits :
       {0ULL, 1ULL, 0xdeadbeefcafef00dULL, ~0ULL}) {
    std::uint64_t back = 0;
    ASSERT_TRUE(parseHexBits(hexBits(bits), &back));
    EXPECT_EQ(back, bits);
  }
  std::uint64_t ignored = 0;
  EXPECT_FALSE(parseHexBits("", &ignored));
  EXPECT_FALSE(parseHexBits("12ab", &ignored));     // no 0x prefix
  EXPECT_FALSE(parseHexBits("0xzz", &ignored));
}

TEST(Protocol, ErrorResponseRoundTripsStatusKind) {
  for (const Status& s :
       {Status::resourceExhausted("queue full"), Status::unavailable("bye"),
        Status::cancelled("stop"), Status::invalidInput("bad"),
        Status::timeout("late")}) {
    const Status back = statusFromResponse(errorResponse(s));
    EXPECT_EQ(back.code(), s.code()) << s.toString();
  }
  EXPECT_TRUE(statusFromResponse(okResponse()).ok());
}

// ---------------------------------------------------------------------------
// Seeded protocol fuzzer

namespace {

std::string validSubmitLine() {
  JobSpec spec;
  spec.name = "fuzz_seed";
  spec.hasGen = true;
  spec.gen.numCells = 500;
  spec.gen.seed = 7;
  spec.priority = 3;
  spec.deadlineSeconds = 9.5;
  spec.saveEvery = 5;
  InjectSpec inj;
  inj.site = "fft.forward";
  inj.spec.kind = FaultKind::kNaN;
  inj.spec.atTick = 4;
  spec.injections.push_back(inj);
  JsonValue req = JsonValue::object();
  req.set("op", JsonValue::str("submit"));
  req.set("job", jobSpecToJson(spec));
  return writeJson(req);
}

}  // namespace

TEST(ProtocolFuzz, MutatedSubmitLinesNeverCrashAndFailTyped) {
  const std::string seedLine = validSubmitLine();
  ASSERT_TRUE(parseRequestLine(seedLine).ok());
  Rng rng(20260808);
  int accepted = 0, rejected = 0;
  for (int iter = 0; iter < 600; ++iter) {
    std::string line = seedLine;
    const int mutations = 1 + static_cast<int>(rng.below(4));
    for (int m = 0; m < mutations; ++m) {
      switch (rng.below(5)) {
        case 0: {  // flip a bit
          const std::size_t i =
              static_cast<std::size_t>(rng.below(line.size()));
          line[i] = static_cast<char>(line[i] ^ (1u << rng.below(8)));
          break;
        }
        case 1:  // truncate
          line.resize(static_cast<std::size_t>(rng.below(line.size() + 1)));
          break;
        case 2: {  // duplicate a span
          if (line.empty()) break;
          const std::size_t a =
              static_cast<std::size_t>(rng.below(line.size()));
          const std::size_t n = static_cast<std::size_t>(
              rng.below(line.size() - a) + 1);
          line.insert(a, line.substr(a, n));
          break;
        }
        case 3: {  // delete a span
          if (line.empty()) break;
          const std::size_t a =
              static_cast<std::size_t>(rng.below(line.size()));
          line.erase(a, static_cast<std::size_t>(
                            rng.below(line.size() - a) + 1));
          break;
        }
        default: {  // insert random bytes
          std::string junk;
          for (int i = 0; i < 4; ++i) {
            junk += static_cast<char>(rng.below(256));
          }
          line.insert(static_cast<std::size_t>(rng.below(line.size() + 1)),
                      junk);
          break;
        }
      }
    }
    auto r = parseRequestLine(line, 64 * 1024);
    if (r.ok()) {
      ++accepted;  // a mutation can still be valid JSON + a valid request
    } else {
      ++rejected;
      EXPECT_EQ(r.status().code(), StatusCode::kInvalidInput)
          << "iter " << iter << " -> " << r.status().toString();
    }
  }
  // The overwhelming majority of mutations must be rejected; if not, the
  // validator is too lax to protect the daemon.
  EXPECT_GT(rejected, accepted * 3) << rejected << " vs " << accepted;
}

TEST(ProtocolFuzz, RandomGarbageNeverCrashes) {
  Rng rng(99);
  for (int iter = 0; iter < 400; ++iter) {
    std::string line;
    const std::size_t n = static_cast<std::size_t>(rng.below(300));
    for (std::size_t i = 0; i < n; ++i) {
      line += static_cast<char>(rng.below(256));
    }
    auto r = parseRequestLine(line, 64 * 1024);
    if (!r.ok()) {
      EXPECT_EQ(r.status().code(), StatusCode::kInvalidInput);
    }
  }
}

// ---------------------------------------------------------------------------
// AdmissionQueue

TEST(AdmissionQueue, FullQueueRejectsImmediatelyTyped) {
  AdmissionQueue q(2);
  EXPECT_TRUE(q.tryPush(1, 0).ok());
  EXPECT_TRUE(q.tryPush(2, 0).ok());
  const Status s = q.tryPush(3, 0);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(q.size(), 2u);
}

TEST(AdmissionQueue, PriorityDescendingFifoWithin) {
  AdmissionQueue q(10);
  ASSERT_TRUE(q.tryPush(1, 0).ok());
  ASSERT_TRUE(q.tryPush(2, 5).ok());
  ASSERT_TRUE(q.tryPush(3, 5).ok());
  ASSERT_TRUE(q.tryPush(4, -1).ok());
  ASSERT_TRUE(q.tryPush(5, 0).ok());
  std::vector<std::uint64_t> order;
  std::uint64_t id = 0;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(q.pop(&id));
    order.push_back(id);
  }
  EXPECT_EQ(order, (std::vector<std::uint64_t>{2, 3, 1, 5, 4}));
}

TEST(AdmissionQueue, TryEraseRemovesQueuedJob) {
  AdmissionQueue q(4);
  ASSERT_TRUE(q.tryPush(1, 0).ok());
  ASSERT_TRUE(q.tryPush(2, 0).ok());
  EXPECT_TRUE(q.tryErase(1));
  EXPECT_FALSE(q.tryErase(1));   // already gone
  EXPECT_FALSE(q.tryErase(99));  // never queued
  std::uint64_t id = 0;
  ASSERT_TRUE(q.pop(&id));
  EXPECT_EQ(id, 2u);
  EXPECT_EQ(q.size(), 0u);
}

TEST(AdmissionQueue, CloseWakesBlockedPopAndStopsAdmission) {
  AdmissionQueue q(4);
  std::thread popper([&q] {
    std::uint64_t id = 0;
    EXPECT_FALSE(q.pop(&id));  // woken by close, nothing dequeued
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  q.close();
  popper.join();
  const Status s = q.tryPush(9, 0);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kUnavailable);
}

TEST(AdmissionQueue, CloseLeavesEntriesQueuedForRecovery) {
  AdmissionQueue q(4);
  ASSERT_TRUE(q.tryPush(1, 0).ok());
  q.close();
  std::uint64_t id = 0;
  // pop() returns false once closed even with entries left: the daemon
  // journals the leftovers as preempted instead of draining them.
  EXPECT_FALSE(q.pop(&id));
  EXPECT_EQ(q.size(), 1u);
}

TEST(AdmissionQueue, RecoveredJobsBypassCapacity) {
  AdmissionQueue q(1);
  ASSERT_TRUE(q.tryPush(1, 0).ok());
  ASSERT_FALSE(q.tryPush(2, 0).ok());
  q.pushRecovered(3, 7);  // must not be bounced by the full queue
  EXPECT_EQ(q.size(), 2u);
  std::uint64_t id = 0;
  ASSERT_TRUE(q.pop(&id));
  EXPECT_EQ(id, 3u);  // higher priority runs first
}

// ---------------------------------------------------------------------------
// JobStore journal

class JobStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::path(::testing::TempDir()) /
            ("serve_store_" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name())))
               .string();
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }
  std::string dir_;
};

TEST_F(JobStoreTest, PendingJobsRecoverInIdOrder) {
  JobStore store(dir_);
  ASSERT_TRUE(store.init().ok());
  JobSpec spec;
  spec.hasGen = true;
  spec.gen.numCells = 321;
  spec.gen.seed = 5;
  spec.priority = 2;
  ASSERT_TRUE(store.writePending(7, spec).ok());
  ASSERT_TRUE(store.writePending(3, spec).ok());
  ASSERT_TRUE(store.writePending(11, spec).ok());

  int corrupt = -1;
  const auto pending = store.recoverPending(&corrupt);
  EXPECT_EQ(corrupt, 0);
  ASSERT_EQ(pending.size(), 3u);
  EXPECT_EQ(pending[0].id, 3u);
  EXPECT_EQ(pending[1].id, 7u);
  EXPECT_EQ(pending[2].id, 11u);
  EXPECT_EQ(pending[0].spec.gen.numCells, 321u);
  EXPECT_EQ(pending[0].spec.priority, 2);
  EXPECT_EQ(store.maxJobId(), 11u);
}

TEST_F(JobStoreTest, ResultSupersedesJournalEntry) {
  JobStore store(dir_);
  ASSERT_TRUE(store.init().ok());
  JobSpec spec;
  spec.hasGen = true;
  ASSERT_TRUE(store.writePending(1, spec).ok());
  ASSERT_TRUE(store.writePending(2, spec).ok());

  JobOutcome out;
  out.id = 1;
  out.hpwlBits = 0x4141414141414141ULL;
  ASSERT_TRUE(store.writeResult(out).ok());
  // Job 1 has a result: even with its journal entry still present it must
  // not be recovered (the kill could land between result write and journal
  // removal).
  const auto pending = store.recoverPending();
  ASSERT_EQ(pending.size(), 1u);
  EXPECT_EQ(pending[0].id, 2u);

  ASSERT_TRUE(store.hasResult(1));
  auto back = store.readResult(1);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->hpwlBits, 0x4141414141414141ULL);
  EXPECT_FALSE(store.hasResult(2));
  EXPECT_FALSE(store.readResult(2).ok());
}

TEST_F(JobStoreTest, CorruptJournalEntryDroppedNotFatal) {
  JobStore store(dir_);
  ASSERT_TRUE(store.init().ok());
  JobSpec spec;
  spec.hasGen = true;
  ASSERT_TRUE(store.writePending(1, spec).ok());
  {
    std::ofstream bad(dir_ + "/jobs/job_2.json");
    bad << "{\"half\": tru";
  }
  int corrupt = 0;
  const auto pending = store.recoverPending(&corrupt);
  EXPECT_EQ(corrupt, 1);
  ASSERT_EQ(pending.size(), 1u);
  EXPECT_EQ(pending[0].id, 1u);
  // The corrupt id still counts for allocation so a new job can't collide.
  EXPECT_EQ(store.maxJobId(), 2u);
}

TEST_F(JobStoreTest, RemovePendingIsIdempotent) {
  JobStore store(dir_);
  ASSERT_TRUE(store.init().ok());
  JobSpec spec;
  spec.hasGen = true;
  ASSERT_TRUE(store.writePending(4, spec).ok());
  store.removePending(4);
  store.removePending(4);
  EXPECT_TRUE(store.recoverPending().empty());
  EXPECT_EQ(store.maxJobId(), 0u);
}
