#include <gtest/gtest.h>

#include "baseline/bell.h"
#include "baseline/fm.h"
#include "baseline/mincut.h"
#include "baseline/quadratic.h"
#include "eval/metrics.h"
#include "gen/generator.h"
#include "util/rng.h"
#include "wirelength/wl.h"

namespace ep {
namespace {

/// Two cliques of 8 vertices joined by a single bridge net: the optimal
/// bisection cuts exactly the bridge.
FmProblem twoCliques() {
  FmProblem p;
  p.areas.assign(16, 1.0);
  for (int g = 0; g < 2; ++g) {
    for (int i = 0; i < 8; ++i) {
      for (int j = i + 1; j < 8; ++j) {
        p.nets.push_back({static_cast<std::int32_t>(8 * g + i),
                          static_cast<std::int32_t>(8 * g + j)});
      }
    }
  }
  p.nets.push_back({0, 8});  // bridge
  return p;
}

TEST(Fm, FindsObviousBisection) {
  const auto p = twoCliques();
  const FmResult res = fmPartition(p, 1);
  EXPECT_EQ(res.finalCut, 1);
  // Both cliques fully on one side each.
  for (int i = 1; i < 8; ++i) EXPECT_EQ(res.side[0], res.side[i]);
  for (int i = 9; i < 16; ++i) EXPECT_EQ(res.side[8], res.side[i]);
  EXPECT_NE(res.side[0], res.side[8]);
}

TEST(Fm, NeverWorsensInitialCut) {
  Rng rng(5);
  for (int trial = 0; trial < 5; ++trial) {
    FmProblem p;
    const int n = 60;
    p.areas.assign(n, 1.0);
    for (int e = 0; e < 120; ++e) {
      std::vector<std::int32_t> net;
      const int deg = 2 + static_cast<int>(rng.below(3));
      for (int k = 0; k < deg; ++k) {
        net.push_back(static_cast<std::int32_t>(rng.below(n)));
      }
      std::sort(net.begin(), net.end());
      net.erase(std::unique(net.begin(), net.end()), net.end());
      if (net.size() >= 2) p.nets.push_back(net);
    }
    const FmResult res = fmPartition(p, 100 + trial);
    EXPECT_LE(res.finalCut, res.initialCut);
  }
}

TEST(Fm, RespectsBalance) {
  FmProblem p;
  const int n = 40;
  p.areas.assign(n, 1.0);
  Rng rng(9);
  for (int e = 0; e < 80; ++e) {
    p.nets.push_back({static_cast<std::int32_t>(rng.below(n)),
                      static_cast<std::int32_t>(rng.below(n))});
  }
  p.targetFraction = 0.5;
  p.tolerance = 0.1;
  const FmResult res = fmPartition(p, 3);
  double a0 = 0.0;
  for (int i = 0; i < n; ++i) a0 += res.side[i] == 0 ? 1.0 : 0.0;
  EXPECT_NEAR(a0 / n, 0.5, 0.1 + 1e-9);
}

TEST(Fm, RespectsLockedVertices) {
  auto p = twoCliques();
  p.locked.assign(16, -1);
  // Force clique 0's vertex to side 1 — FM must keep it there.
  p.locked[3] = 1;
  const FmResult res = fmPartition(p, 1);
  EXPECT_EQ(res.side[3], 1);
}

TEST(Fm, UnevenTargetFraction) {
  FmProblem p;
  p.areas.assign(30, 1.0);
  Rng rng(13);
  for (int e = 0; e < 60; ++e) {
    p.nets.push_back({static_cast<std::int32_t>(rng.below(30)),
                      static_cast<std::int32_t>(rng.below(30))});
  }
  p.targetFraction = 0.25;
  p.tolerance = 0.08;
  const FmResult res = fmPartition(p, 7);
  double a0 = 0.0;
  for (int i = 0; i < 30; ++i) a0 += res.side[i] == 0 ? 1.0 : 0.0;
  EXPECT_NEAR(a0 / 30.0, 0.25, 0.08 + 1e-9);
}

TEST(Fm, CutSizeIndependentCheck) {
  const auto p = twoCliques();
  std::vector<std::int8_t> side(16, 0);
  for (int i = 8; i < 16; ++i) side[i] = 1;
  EXPECT_EQ(cutSize(p, side), 1);
  side[0] = 1;
  EXPECT_EQ(cutSize(p, side), 7);  // vertex 0's clique edges now cut
}

PlacementDB testCircuit(std::uint64_t seed, std::size_t cells = 600,
                        std::size_t macros = 0) {
  GenSpec spec;
  spec.name = "bl";
  spec.numCells = cells;
  spec.numMovableMacros = macros;
  spec.seed = seed;
  return generateCircuit(spec);
}

TEST(MinCut, PlacesEverythingInRegion) {
  PlacementDB db = testCircuit(21);
  const MinCutResult res = minCutPlace(db);
  EXPECT_GT(res.partitions, 10);
  for (auto i : db.movable()) {
    const auto& o = db.objects[static_cast<std::size_t>(i)];
    EXPECT_TRUE(db.region.contains(o.center())) << o.name;
  }
}

TEST(MinCut, BeatsRandomPlacement) {
  PlacementDB db = testCircuit(23);
  // Random placement HPWL as the reference.
  Rng rng(1);
  for (auto i : db.movable()) {
    auto& o = db.objects[static_cast<std::size_t>(i)];
    o.setCenter(rng.uniform(db.region.lx + o.w, db.region.hx - o.w),
                rng.uniform(db.region.ly + o.h, db.region.hy - o.h));
  }
  const double randomHpwl = hpwl(db);
  minCutPlace(db);
  EXPECT_LT(hpwl(db), 0.8 * randomHpwl);
}

TEST(MinCut, SpreadsDensity) {
  PlacementDB db = testCircuit(25);
  minCutPlace(db);
  // Leaf-granular placement: overflow well below the piled-up extreme.
  EXPECT_LT(densityOverflow(db).overflow, 0.6);
}

TEST(Quadratic, ReachesOverflowTarget) {
  PlacementDB db = testCircuit(27);
  QuadraticPlaceConfig cfg;
  cfg.targetOverflow = 0.15;
  const auto res = quadraticPlace(db, cfg);
  EXPECT_LE(res.finalOverflow, 0.25);  // close to target (spread-limited)
  EXPECT_GT(res.hpwl, 0.0);
}

TEST(Quadratic, StaysInRegion) {
  PlacementDB db = testCircuit(29, 400, 3);
  quadraticPlace(db);
  for (auto i : db.movable()) {
    const auto& o = db.objects[static_cast<std::size_t>(i)];
    EXPECT_GE(o.lx, db.region.lx - 1e-9);
    EXPECT_LE(o.lx + o.w, db.region.hx + 1e-9);
    EXPECT_GE(o.ly, db.region.ly - 1e-9);
    EXPECT_LE(o.ly + o.h, db.region.hy + 1e-9);
  }
}

TEST(Quadratic, SpreadingReducesOverflowMonotonically) {
  PlacementDB db = testCircuit(31);
  QuadraticPlaceConfig one;
  one.maxIterations = 2;
  one.targetOverflow = 0.0;  // force full run
  PlacementDB db1 = db;
  const auto early = quadraticPlace(db1, one);
  QuadraticPlaceConfig many = one;
  many.maxIterations = 20;
  PlacementDB db2 = db;
  const auto late = quadraticPlace(db2, many);
  EXPECT_LT(late.finalOverflow, early.finalOverflow);
}

TEST(Bell, ReducesOverflow) {
  PlacementDB db = testCircuit(33, 400);
  const double before = densityOverflow(db).overflow;
  (void)before;
  BellPlaceConfig cfg;
  cfg.maxOuterIterations = 10;
  cfg.cgIterationsPerOuter = 40;
  const auto res = bellPlace(db, cfg);
  EXPECT_LT(res.finalOverflow, 0.45);
  EXPECT_GT(res.gradEvals, 0);
}

TEST(Bell, LineSearchDominatesRuntime) {
  // Sec. V-A: line search is the bottleneck of CG-based placers.
  PlacementDB db = testCircuit(35, 500);
  BellPlaceConfig cfg;
  cfg.maxOuterIterations = 4;
  cfg.cgIterationsPerOuter = 30;
  const auto res = bellPlace(db, cfg);
  EXPECT_GT(res.lineSearchSeconds, 0.3 * res.optimizerSeconds);
}

TEST(Bell, NesterovModeAlsoSpreads) {
  PlacementDB db = testCircuit(39, 400);
  BellPlaceConfig cfg;
  cfg.useNesterov = true;
  cfg.maxOuterIterations = 10;
  cfg.cgIterationsPerOuter = 40;
  const auto res = bellPlace(db, cfg);
  EXPECT_LT(res.finalOverflow, 0.45);
  EXPECT_DOUBLE_EQ(res.lineSearchSeconds, 0.0);  // no line search
  for (auto i : db.movable()) {
    const auto& o = db.objects[static_cast<std::size_t>(i)];
    EXPECT_TRUE(db.region.expanded(1e-6).contains(o.rect())) << o.name;
  }
}

TEST(Bell, StaysInRegion) {
  PlacementDB db = testCircuit(37, 300);
  bellPlace(db);
  for (auto i : db.movable()) {
    const auto& o = db.objects[static_cast<std::size_t>(i)];
    EXPECT_TRUE(db.region.expanded(1e-6).contains(o.rect())) << o.name;
  }
}

}  // namespace
}  // namespace ep
