#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <set>

#include "util/csv.h"
#include "util/geometry.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/timer.h"

namespace ep {
namespace {

TEST(Geometry, PointArithmetic) {
  const Point a{1.0, 2.0};
  const Point b{3.0, -4.0};
  EXPECT_EQ(a + b, Point(4.0, -2.0));
  EXPECT_EQ(a - b, Point(-2.0, 6.0));
  EXPECT_EQ(a * 2.0, Point(2.0, 4.0));
  EXPECT_DOUBLE_EQ(Point(3.0, 4.0).norm(), 5.0);
}

TEST(Geometry, RectBasics) {
  const Rect r{0.0, 0.0, 4.0, 2.0};
  EXPECT_DOUBLE_EQ(r.width(), 4.0);
  EXPECT_DOUBLE_EQ(r.height(), 2.0);
  EXPECT_DOUBLE_EQ(r.area(), 8.0);
  EXPECT_EQ(r.center(), Point(2.0, 1.0));
  EXPECT_FALSE(r.empty());
  EXPECT_TRUE(Rect(1.0, 1.0, 1.0, 3.0).empty());
}

TEST(Geometry, RectContainsAndOverlap) {
  const Rect r{0.0, 0.0, 10.0, 10.0};
  EXPECT_TRUE(r.contains(Point{5.0, 5.0}));
  EXPECT_TRUE(r.contains(Point{0.0, 0.0}));  // boundary is inside
  EXPECT_FALSE(r.contains(Point{10.5, 5.0}));
  EXPECT_TRUE(r.contains(Rect{1.0, 1.0, 9.0, 9.0}));
  EXPECT_FALSE(r.contains(Rect{-1.0, 1.0, 9.0, 9.0}));
  EXPECT_TRUE(r.overlaps(Rect{9.0, 9.0, 12.0, 12.0}));
  // Touching edges do not overlap (open comparison).
  EXPECT_FALSE(r.overlaps(Rect{10.0, 0.0, 12.0, 10.0}));
}

TEST(Geometry, OverlapArea) {
  const Rect a{0.0, 0.0, 4.0, 4.0};
  EXPECT_DOUBLE_EQ(a.overlapArea(Rect{2.0, 2.0, 6.0, 6.0}), 4.0);
  EXPECT_DOUBLE_EQ(a.overlapArea(Rect{4.0, 0.0, 8.0, 4.0}), 0.0);
  EXPECT_DOUBLE_EQ(a.overlapArea(a), 16.0);
}

TEST(Geometry, IntervalOverlap) {
  EXPECT_DOUBLE_EQ(intervalOverlap(0.0, 2.0, 1.0, 3.0), 1.0);
  EXPECT_DOUBLE_EQ(intervalOverlap(0.0, 1.0, 2.0, 3.0), 0.0);
  EXPECT_DOUBLE_EQ(intervalOverlap(0.0, 5.0, 1.0, 2.0), 1.0);
}

TEST(Geometry, ClampLowerLeft) {
  const Rect region{0.0, 0.0, 10.0, 10.0};
  EXPECT_EQ(clampLowerLeft(-3.0, 4.0, 2.0, 2.0, region), Point(0.0, 4.0));
  EXPECT_EQ(clampLowerLeft(9.5, 9.5, 2.0, 2.0, region), Point(8.0, 8.0));
  // Object wider than region pins to the lower-left.
  EXPECT_EQ(clampLowerLeft(5.0, 5.0, 20.0, 2.0, region), Point(0.0, 5.0));
}

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 4);
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    const double v = rng.uniform(-2.0, 5.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(Rng, BelowIsUnbiasedEnough) {
  Rng rng(11);
  int counts[5] = {};
  const int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) ++counts[rng.below(5)];
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / kDraws, 0.2, 0.02);
  }
}

TEST(Rng, RangeInclusive) {
  Rng rng(3);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 200; ++i) {
    const auto v = rng.range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, GaussianMoments) {
  Rng rng(19);
  Summary s;
  for (int i = 0; i < 20000; ++i) s.add(rng.gaussian());
  EXPECT_NEAR(s.mean(), 0.0, 0.05);
  EXPECT_NEAR(s.stddev(), 1.0, 0.05);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(5);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Stats, Norms) {
  const std::vector<double> v{3.0, -4.0};
  EXPECT_DOUBLE_EQ(norm2(v), 5.0);
  EXPECT_DOUBLE_EQ(norm1(v), 7.0);
  const std::vector<double> w{1.0, 1.0};
  EXPECT_DOUBLE_EQ(dot(v, w), -1.0);
  EXPECT_DOUBLE_EQ(dist2(v, w), std::hypot(2.0, 5.0));
}

TEST(Stats, SummaryWelford) {
  Summary s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138089935, 1e-6);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(Stats, Geomean) {
  const std::vector<double> v{1.0, 4.0, 16.0};
  EXPECT_NEAR(geomean(v), 4.0, 1e-12);
  EXPECT_DOUBLE_EQ(geomean({}), 0.0);
  const std::vector<double> bad{1.0, 0.0};
  EXPECT_DOUBLE_EQ(geomean(bad), 0.0);
}

TEST(Timer, BreakdownAccumulates) {
  TimeBreakdown bd;
  bd.add("a", 1.0);
  bd.add("a", 2.0);
  bd.add("b", 0.5);
  EXPECT_DOUBLE_EQ(bd.get("a"), 3.0);
  EXPECT_DOUBLE_EQ(bd.get("b"), 0.5);
  EXPECT_DOUBLE_EQ(bd.get("missing"), 0.0);
  EXPECT_DOUBLE_EQ(bd.total(), 3.5);
}

TEST(Timer, MeasuresSomething) {
  Timer t;
  volatile double x = 0.0;
  for (int i = 0; i < 100000; ++i) x = x + 1.0;
  EXPECT_GE(t.seconds(), 0.0);
}

TEST(Csv, WritesRows) {
  const std::string path = ::testing::TempDir() + "/ep_csv_test.csv";
  {
    CsvWriter w(path, {"a", "b"});
    ASSERT_TRUE(w.ok());
    w.row(std::vector<double>{1.0, 2.5});
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::getline(in, line);
  EXPECT_EQ(line, "1,2.5");
}

}  // namespace
}  // namespace ep
