#include <gtest/gtest.h>

#include <cmath>

#include "gen/generator.h"
#include "timing/sta.h"
#include "timing/timing_driven.h"

namespace ep {
namespace {

/// Hand-built chain: in -> a -> b -> out, unit-ish geometry so delays are
/// exact Manhattan distances.
PlacementDB chain() {
  PlacementDB db;
  db.region = {0, 0, 100, 10};
  auto add = [&](const char* name, double cx, double cy, bool fixed) {
    Object o;
    o.name = name;
    o.w = 1;
    o.h = 1;
    o.fixed = fixed;
    o.setCenter(cx, cy);
    db.objects.push_back(o);
  };
  add("in", 0.5, 5, true);    // 0
  add("a", 10.5, 5, false);   // 1
  add("b", 30.5, 5, false);   // 2
  add("out", 70.5, 5, true);  // 3
  auto net = [&](const char* name, std::int32_t from, std::int32_t to) {
    Net n;
    n.name = name;
    n.pins = {{from, 0, 0, PinDir::kOutput}, {to, 0, 0, PinDir::kInput}};
    db.nets.push_back(n);
  };
  net("n0", 0, 1);  // delay 10
  net("n1", 1, 2);  // delay 20
  net("n2", 2, 3);  // delay 40
  db.finalize();
  return db;
}

TEST(Sta, ChainArrivalTimesExact) {
  const PlacementDB db = chain();
  const StaResult res = staAnalyze(db);
  EXPECT_DOUBLE_EQ(res.arrival[0], 0.0);
  EXPECT_DOUBLE_EQ(res.arrival[1], 10.0);
  EXPECT_DOUBLE_EQ(res.arrival[2], 30.0);
  EXPECT_DOUBLE_EQ(res.arrival[3], 70.0);
  EXPECT_DOUBLE_EQ(res.maxDelay, 70.0);
  EXPECT_EQ(res.cutCycleEdges, 0);
}

TEST(Sta, AutoClockGivesZeroWns) {
  const StaResult res = staAnalyze(chain());
  EXPECT_DOUBLE_EQ(res.clockPeriod, 70.0);
  EXPECT_DOUBLE_EQ(res.wns, 0.0);
  EXPECT_DOUBLE_EQ(res.tns, 0.0);
}

TEST(Sta, TightClockProducesNegativeSlack) {
  const StaResult res = staAnalyze(chain(), 50.0);
  EXPECT_DOUBLE_EQ(res.wns, -20.0);
  EXPECT_DOUBLE_EQ(res.tns, -20.0);
  // Every net on the single path carries the same worst slack.
  EXPECT_DOUBLE_EQ(res.netSlack[0], -20.0);
  EXPECT_DOUBLE_EQ(res.netSlack[1], -20.0);
  EXPECT_DOUBLE_EQ(res.netSlack[2], -20.0);
}

TEST(Sta, CriticalityBounds) {
  const StaResult res = staAnalyze(chain(), 70.0);
  for (std::size_t e = 0; e < 3; ++e) {
    EXPECT_GE(res.criticality(e), 0.0);
    EXPECT_LE(res.criticality(e), 1.0);
  }
  // All three nets lie on the one (critical) path.
  EXPECT_DOUBLE_EQ(res.criticality(0), 1.0);
}

TEST(Sta, SidePathHasLowerCriticality) {
  PlacementDB db = chain();
  // Add a short side branch: a -> s (tiny delay), endpoint s.
  Object s;
  s.name = "s";
  s.w = 1;
  s.h = 1;
  s.setCenter(11.5, 5);
  db.objects.push_back(s);
  Net n;
  n.name = "side";
  n.pins = {{1, 0, 0, PinDir::kOutput}, {4, 0, 0, PinDir::kInput}};
  db.nets.push_back(n);
  db.finalize();
  const StaResult res = staAnalyze(db);
  EXPECT_LT(res.criticality(3), res.criticality(0));
}

TEST(Sta, CombinationalLoopIsCutNotHung) {
  PlacementDB db = chain();
  // b -> a creates a cycle.
  Net back;
  back.name = "loop";
  back.pins = {{2, 0, 0, PinDir::kOutput}, {1, 0, 0, PinDir::kInput}};
  db.nets.push_back(back);
  db.finalize();
  const StaResult res = staAnalyze(db);
  EXPECT_GT(res.cutCycleEdges, 0);
  EXPECT_TRUE(std::isfinite(res.maxDelay));
}

TEST(Sta, FallsBackToFirstPinWithoutDirections) {
  PlacementDB db = chain();
  for (auto& net : db.nets) {
    for (auto& pin : net.pins) pin.dir = PinDir::kUnknown;
  }
  const StaResult res = staAnalyze(db);
  // First pin is the driver in our construction, so results are unchanged.
  EXPECT_DOUBLE_EQ(res.maxDelay, 70.0);
}

TEST(Sta, GeneratedCircuitIsAnalyzable) {
  GenSpec spec;
  spec.numCells = 600;
  spec.seed = 77;
  const PlacementDB db = generateCircuit(spec);
  const StaResult res = staAnalyze(db);
  EXPECT_GT(res.maxDelay, 0.0);
  EXPECT_NEAR(res.wns, 0.0, 1e-9);  // auto clock (float round-off allowed)
  // Slack must be finite for nets with real edges.
  int finiteSlacks = 0;
  for (std::size_t e = 0; e < db.nets.size(); ++e) {
    if (std::isfinite(res.netSlack[e])) ++finiteSlacks;
  }
  EXPECT_GT(finiteSlacks, static_cast<int>(db.nets.size() / 2));
}

TEST(Sta, CriticalityOfNetWithoutEdgesIsZero) {
  PlacementDB db = chain();
  Net lone;
  lone.name = "lone";
  lone.pins = {{0, 0, 0, PinDir::kOutput}};  // single pin: no timing edge
  db.nets.push_back(lone);
  db.finalize();
  const StaResult res = staAnalyze(db);
  EXPECT_DOUBLE_EQ(res.criticality(3), 0.0);
}

TEST(Sta, EmptyDesignIsSafe) {
  PlacementDB db;
  db.region = {0, 0, 10, 10};
  db.finalize();
  const StaResult res = staAnalyze(db);
  EXPECT_DOUBLE_EQ(res.maxDelay, 0.0);
  EXPECT_DOUBLE_EQ(res.wns, 0.0);
  EXPECT_GT(res.clockPeriod, 0.0);  // falls back to a positive default
}

TEST(Sta, PinOffsetsAffectDelay) {
  PlacementDB db = chain();
  // Push the driver pin of n0 1 unit right: the first edge shortens.
  db.nets[0].pins[0].ox = 1.0;
  const StaResult res = staAnalyze(db);
  EXPECT_DOUBLE_EQ(res.arrival[1], 9.0);
}

TEST(TimingDriven, ImprovesOrHoldsWnsAndStaysLegal) {
  GenSpec spec;
  spec.name = "td";
  spec.numCells = 500;
  spec.seed = 21;
  PlacementDB db = generateCircuit(spec);
  TimingDrivenConfig cfg;
  cfg.rounds = 1;
  const TimingDrivenResult res = timingDrivenPlace(db, cfg);
  EXPECT_TRUE(res.legal);
  // Best-of-rounds is kept, so WNS can only improve or hold.
  EXPECT_GE(res.wnsAfter, res.wnsBefore - 1e-9);
  // Net weights restored.
  for (const auto& net : db.nets) EXPECT_DOUBLE_EQ(net.weight, 1.0);
}

TEST(TimingDriven, ClockTargetDerivedFromSeedRun) {
  GenSpec spec;
  spec.numCells = 300;
  spec.seed = 23;
  PlacementDB db = generateCircuit(spec);
  TimingDrivenConfig cfg;
  cfg.rounds = 0;  // seed run only
  const TimingDrivenResult res = timingDrivenPlace(db, cfg);
  EXPECT_NEAR(res.clockPeriod, cfg.clockFactor * res.maxDelayBefore,
              1e-6 * res.clockPeriod);
}

}  // namespace
}  // namespace ep
