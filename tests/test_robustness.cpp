// Failure injection and degenerate-input robustness: the library must
// degrade gracefully (reported errors, no crashes, no silent corruption)
// on inputs a downstream user will eventually feed it.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "bookshelf/bookshelf.h"
#include "eplace/flow.h"
#include "eplace/global_placer.h"
#include "eval/metrics.h"
#include "gen/generator.h"
#include "legal/legalize.h"
#include "legal/mlg.h"
#include "qp/initial_place.h"
#include "util/context.h"
#include "util/fault_injector.h"
#include "wirelength/wl.h"

namespace ep {
namespace {

// ---------- degenerate instances through the full flow ----------

TEST(Robustness, SingleCellDesign) {
  PlacementDB db;
  db.region = {0, 0, 16, 16};
  Object o;
  o.name = "c0";
  o.w = 2;
  o.h = 1;
  o.setCenter(8, 8);
  db.objects.push_back(o);
  Object pad;
  pad.name = "p";
  pad.w = 1;
  pad.h = 1;
  pad.fixed = true;
  pad.setCenter(1, 1);
  db.objects.push_back(pad);
  db.nets.push_back({"n", {{0, 0, 0}, {1, 0, 0}}, 1.0});
  for (int r = 0; r < 16; ++r) {
    db.rows.push_back({0, static_cast<double>(r), 1.0, 1.0, 16});
  }
  db.finalize();
  const FlowResult res = runEplaceFlow(db);
  EXPECT_TRUE(res.legality.legal) << res.legality.firstIssue;
}

TEST(Robustness, DesignWithoutNets) {
  PlacementDB db;
  db.region = {0, 0, 32, 32};
  for (int i = 0; i < 20; ++i) {
    Object o;
    o.name = "c" + std::to_string(i);
    o.w = 2;
    o.h = 1;
    o.setCenter(16, 16);
    db.objects.push_back(o);
  }
  for (int r = 0; r < 32; ++r) {
    db.rows.push_back({0, static_cast<double>(r), 1.0, 1.0, 32});
  }
  db.finalize();
  // No wirelength force at all: density must still spread and legalize.
  const FlowResult res = runEplaceFlow(db);
  EXPECT_TRUE(res.legality.legal) << res.legality.firstIssue;
  EXPECT_DOUBLE_EQ(res.finalHpwl, 0.0);
}

TEST(Robustness, NoMovableObjects) {
  PlacementDB db;
  db.region = {0, 0, 32, 32};
  Object o;
  o.name = "blk";
  o.w = 8;
  o.h = 8;
  o.fixed = true;
  o.setCenter(16, 16);
  db.objects.push_back(o);
  db.rows.push_back({0, 0, 1.0, 1.0, 32});
  db.finalize();
  const FlowResult res = runEplaceFlow(db);
  EXPECT_TRUE(res.legality.legal);
}

TEST(Robustness, ExtremeUtilizationStillTerminates) {
  GenSpec spec;
  spec.name = "packed";
  spec.numCells = 400;
  spec.utilization = 0.97;  // almost no whitespace, no filler budget
  spec.seed = 5;
  PlacementDB db = generateCircuit(spec);
  GpConfig cfg;
  cfg.maxIterations = 400;
  quadraticInitialPlace(db);
  GlobalPlacer gp(db, db.movable(), cfg);
  gp.makeFillersFromDb();  // likely zero fillers
  const GpResult res = gp.run();
  EXPECT_GT(res.iterations, 0);
  // Must make real spreading progress even if 10% tau is out of reach.
  EXPECT_LT(res.finalOverflow, 0.5);
}

TEST(Robustness, LegalizerReportsImpossibleCapacity) {
  // More cell area than row capacity: must not crash and must report the
  // unplaced remainder instead of overlapping cells silently.
  PlacementDB db;
  db.region = {0, 0, 10, 2};
  db.rows.push_back({0, 0, 1.0, 1.0, 10});
  db.rows.push_back({0, 1, 1.0, 1.0, 10});
  for (int i = 0; i < 30; ++i) {  // 30 area into 20 capacity
    Object o;
    o.name = "c" + std::to_string(i);
    o.w = 1;
    o.h = 1;
    o.setCenter(5, 1);
    db.objects.push_back(o);
  }
  db.finalize();
  const LegalizeResult res = legalizeCells(db);
  EXPECT_FALSE(res.success);
  EXPECT_EQ(res.unplaced, 10);
  // The cells that were placed (row-aligned) are pairwise legal; the
  // unplaced remainder stays at its off-lattice input position.
  auto placed = [&](const Object& o) {
    return (o.ly == 0.0 || o.ly == 1.0) && o.lx == std::round(o.lx);
  };
  int placedOverlaps = 0;
  for (std::size_t i = 0; i < db.objects.size(); ++i) {
    if (!placed(db.objects[i])) continue;
    for (std::size_t j = i + 1; j < db.objects.size(); ++j) {
      if (!placed(db.objects[j])) continue;
      if (db.objects[i].rect().overlapArea(db.objects[j].rect()) > 1e-9) {
        ++placedOverlaps;
      }
    }
  }
  EXPECT_EQ(placedOverlaps, 0);
}

TEST(Robustness, MlgWithWallToWallMacros) {
  // Macros that barely fit: the annealer must still find a packing.
  PlacementDB db;
  db.region = {0, 0, 32, 32};
  for (int r = 0; r < 32; ++r) {
    db.rows.push_back({0, static_cast<double>(r), 1.0, 1.0, 32});
  }
  for (int i = 0; i < 4; ++i) {
    Object o;
    o.name = "m" + std::to_string(i);
    o.kind = ObjKind::kMacro;
    o.w = 14;
    o.h = 14;
    o.setCenter(16, 16);  // all piled at the center
    db.objects.push_back(o);
  }
  db.finalize();
  MlgConfig cfg;
  cfg.maxOuterIterations = 40;
  const MlgResult res = legalizeMacros(db, cfg);
  EXPECT_TRUE(res.legal) << "Om=" << res.overlapAfter;
}

// ---------- bookshelf failure injection ----------

class BookshelfCorruption : public ::testing::Test {
 protected:
  void SetUp() override {
    // Unique per test: these cases run as separate ctest processes in
    // parallel, and a shared fixture dir would let one test's SetUp rewrite
    // files another test is mid-read on (the reader legitimately opens each
    // file twice — counting pass, then fill pass).
    dir_ = ::testing::TempDir() + "/corrupt_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::create_directories(dir_);
    GenSpec spec;
    spec.numCells = 30;
    spec.seed = 3;
    db_ = generateCircuit(spec);
    ASSERT_TRUE(writeBookshelf(dir_, "c", db_).ok());
  }
  std::string dir_;
  PlacementDB db_;
};

TEST_F(BookshelfCorruption, MissingNodesFile) {
  std::filesystem::remove(dir_ + "/c.nodes");
  PlacementDB db;
  const auto res = readBookshelf(dir_ + "/c.aux", db);
  EXPECT_FALSE(res.ok());
}

TEST_F(BookshelfCorruption, UnknownNodeInNets) {
  std::ofstream out(dir_ + "/c.nets", std::ios::app);
  out << "NetDegree : 2 bad\n  ghost B : 0 0\n  c0 B : 0 0\n";
  out.close();
  PlacementDB db;
  const auto res = readBookshelf(dir_ + "/c.aux", db);
  EXPECT_FALSE(res.ok());
  EXPECT_NE(res.message().find("ghost"), std::string::npos);
}

TEST_F(BookshelfCorruption, PinLineOutsideNet) {
  {
    std::ofstream out(dir_ + "/c.nets");
    out << "UCLA nets 1.0\nNumNets : 1\nNumPins : 1\n  c0 B : 0 0\n";
  }
  PlacementDB db;
  EXPECT_FALSE(readBookshelf(dir_ + "/c.aux", db).ok());
}

TEST_F(BookshelfCorruption, TruncatedNodesLine) {
  {
    std::ofstream out(dir_ + "/c.nodes");
    out << "UCLA nodes 1.0\nNumNodes : 1\nNumTerminals : 0\n  lonely\n";
  }
  PlacementDB db;
  EXPECT_FALSE(readBookshelf(dir_ + "/c.aux", db).ok());
}

TEST_F(BookshelfCorruption, NonNumericTokensReportedWithLineNumber) {
  {
    std::ofstream out(dir_ + "/c.nodes");
    out << "UCLA nodes 1.0\nNumNodes : 1\nNumTerminals : 0\n"
        << "  cell width height\n";  // words where numbers belong
  }
  PlacementDB db;
  const auto res = readBookshelf(dir_ + "/c.aux", db);
  EXPECT_FALSE(res.ok());
  EXPECT_EQ(res.code(), StatusCode::kInvalidInput);
  EXPECT_NE(res.message().find("non-numeric node dims"), std::string::npos);
  EXPECT_NE(res.message().find("c.nodes:4:"), std::string::npos)
      << res.message();
}

TEST_F(BookshelfCorruption, TruncatedNodesCountMismatch) {
  // NumNodes promises 5 rows but the file ends after 2 — the classic
  // half-copied benchmark. Must be caught, not read as a 2-cell design.
  {
    std::ofstream out(dir_ + "/c.nodes");
    out << "UCLA nodes 1.0\nNumNodes : 5\nNumTerminals : 0\n"
        << "  a 1 1\n  b 1 1\n";
  }
  PlacementDB db;
  const auto res = readBookshelf(dir_ + "/c.aux", db);
  EXPECT_FALSE(res.ok());
  EXPECT_NE(res.message().find("truncated file?"), std::string::npos)
      << res.message();
}

TEST_F(BookshelfCorruption, NetPinCountMismatch) {
  {
    std::ofstream out(dir_ + "/c.nets");
    out << "UCLA nets 1.0\nNumNets : 1\nNumPins : 3\n"
        << "NetDegree : 3 n0\n  c0 B : 0 0\n  c1 B : 0 0\n";
  }
  PlacementDB db;
  const auto res = readBookshelf(dir_ + "/c.aux", db);
  EXPECT_FALSE(res.ok());
  EXPECT_NE(res.message().find("expects 3 pins, got 2"), std::string::npos)
      << res.message();
}

TEST_F(BookshelfCorruption, NumPinsTotalMismatch) {
  {
    std::ofstream out(dir_ + "/c.nets");
    out << "UCLA nets 1.0\nNumNets : 1\nNumPins : 5\n"
        << "NetDegree : 2 n0\n  c0 B : 0 0\n  c1 B : 0 0\n";
  }
  PlacementDB db;
  const auto res = readBookshelf(dir_ + "/c.aux", db);
  EXPECT_FALSE(res.ok());
  EXPECT_NE(res.message().find("NumPins declares 5"), std::string::npos)
      << res.message();
}

TEST_F(BookshelfCorruption, EmptyNetRejected) {
  {
    std::ofstream out(dir_ + "/c.nets");
    out << "UCLA nets 1.0\nNumNets : 1\nNumPins : 0\nNetDegree : 0 n0\n";
  }
  PlacementDB db;
  const auto res = readBookshelf(dir_ + "/c.aux", db);
  EXPECT_FALSE(res.ok());
  EXPECT_NE(res.message().find("zero pins"), std::string::npos)
      << res.message();
}

TEST_F(BookshelfCorruption, NonNumericPlCoordinates) {
  {
    std::ofstream out(dir_ + "/c.pl");
    out << "UCLA pl 1.0\nc0 here there : N\n";
  }
  PlacementDB db;
  const auto res = readBookshelf(dir_ + "/c.aux", db);
  EXPECT_FALSE(res.ok());
  EXPECT_NE(res.message().find("non-numeric coordinates"), std::string::npos);
  EXPECT_NE(res.message().find("c.pl:2:"), std::string::npos) << res.message();
}

TEST_F(BookshelfCorruption, InjectedMidFileTruncationNeverCrashes) {
  // The "bookshelf.line" fault site simulates the stream dying mid-read;
  // the parser must fail with a typed error, not crash or return garbage.
  RuntimeContext ctx;
  ctx.faults().arm("bookshelf.line", {FaultKind::kTruncate, /*atTick=*/5, 1});
  PlacementDB db;
  const auto res = readBookshelf(dir_ + "/c.aux", db, &ctx);
  EXPECT_FALSE(res.ok());
  EXPECT_EQ(res.code(), StatusCode::kInvalidInput);
}

TEST_F(BookshelfCorruption, ExtraWhitespaceAndCommentsAreFine) {
  // Robustness in the other direction: odd-but-legal formatting parses.
  {
    std::ofstream out(dir_ + "/c.aux");
    out << "# a comment\nRowBasedPlacement :   c.nodes   c.nets c.wts c.pl "
           "c.scl  \n";
  }
  PlacementDB db;
  EXPECT_TRUE(readBookshelf(dir_ + "/c.aux", db).ok());
  EXPECT_EQ(db.objects.size(), db_.objects.size());
}

// ---------- metric edge cases ----------

TEST(Robustness, MetricsOnEmptyDb) {
  PlacementDB db;
  db.region = {0, 0, 10, 10};
  db.finalize();
  EXPECT_DOUBLE_EQ(hpwl(db), 0.0);
  EXPECT_DOUBLE_EQ(densityOverflow(db).overflow, 0.0);
  EXPECT_TRUE(checkLegality(db).legal);
}

TEST(Robustness, OverflowWithZeroMovableArea) {
  PlacementDB db;
  db.region = {0, 0, 10, 10};
  Object o;
  o.name = "b";
  o.w = 4;
  o.h = 4;
  o.fixed = true;
  db.objects.push_back(o);
  db.finalize();
  EXPECT_DOUBLE_EQ(densityOverflow(db).overflow, 0.0);
}

// ---------- thread-pool fault containment ----------

TEST(Robustness, ThrowingPoolTaskSurfacesAsStatusNotTerminate) {
  // "parallel.task" makes one pool task throw mid-flow. The checked flow
  // boundary must convert that into StatusCode::kInternal instead of
  // letting the exception escape (which would std::terminate from a worker
  // or unwind through main).
  RuntimeContext ctx(4);
  ctx.faults().arm("parallel.task", {FaultKind::kNaN, /*atTick=*/3, 1});
  GenSpec spec;
  spec.name = "pooltask";
  spec.numCells = 300;
  spec.seed = 5;
  PlacementDB db = generateCircuit(spec);
  const StatusOr<FlowResult> res =
      runEplaceFlowChecked(db, FlowConfig{}, &ctx);
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kInternal);
  EXPECT_NE(res.status().message().find("parallel.task"), std::string::npos)
      << res.status().toString();
}

TEST(Robustness, PoolTaskFaultOnOneThreadStillTyped) {
  // Even the single-threaded (inline) execution path honors the site, so
  // chaos sweeps behave the same whatever --threads is.
  RuntimeContext ctx(1);
  ctx.faults().arm("parallel.task", {FaultKind::kNaN, /*atTick=*/0, 1});
  GenSpec spec;
  spec.name = "pooltask1";
  spec.numCells = 300;
  spec.seed = 6;
  PlacementDB db = generateCircuit(spec);
  const StatusOr<FlowResult> res =
      runEplaceFlowChecked(db, FlowConfig{}, &ctx);
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace ep
