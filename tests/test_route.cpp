#include <gtest/gtest.h>

#include "eplace/flow.h"
#include "eval/metrics.h"
#include "gen/generator.h"
#include "route/routability.h"
#include "route/rudy.h"

namespace ep {
namespace {

PlacementDB twoCellNet(double x0, double y0, double x1, double y1) {
  PlacementDB db;
  db.region = {0, 0, 64, 64};
  for (int i = 0; i < 2; ++i) {
    Object o;
    o.name = "c" + std::to_string(i);
    o.w = 1;
    o.h = 1;
    db.objects.push_back(o);
  }
  db.objects[0].setCenter(x0, y0);
  db.objects[1].setCenter(x1, y1);
  db.nets.push_back({"n", {{0, 0, 0}, {1, 0, 0}}, 1.0});
  db.finalize();
  return db;
}

TEST(Rudy, SingleNetSpreadsOverItsBox) {
  PlacementDB db = twoCellNet(8, 8, 40, 24);
  const CongestionMap m = estimateRudy(db, 32, 32);
  // Demand inside the box, none far outside.
  EXPECT_GT(m.at(24, 16), 0.0);
  EXPECT_DOUBLE_EQ(m.at(60, 60), 0.0);
  // Total demand equals the net's (w + h) wirelength estimate.
  double total = 0.0;
  for (double d : m.demand) total += d * m.grid.binArea();
  EXPECT_NEAR(total, (40.0 - 8.0) + (24.0 - 8.0), 1e-6);
}

TEST(Rudy, DemandIsUniformInsideTheBox) {
  PlacementDB db = twoCellNet(8, 8, 56, 56);
  const CongestionMap m = estimateRudy(db, 32, 32);
  const double a = m.at(16, 16);
  const double b = m.at(40, 40);
  EXPECT_NEAR(a, b, 1e-9);
}

TEST(Rudy, CrossingNetsSuperpose) {
  PlacementDB db = twoCellNet(8, 32, 56, 32);  // horizontal band
  // Add a vertical band crossing it.
  Object o;
  o.name = "c2";
  o.w = 1;
  o.h = 1;
  o.setCenter(32, 8);
  db.objects.push_back(o);
  Object o2 = o;
  o2.name = "c3";
  o2.setCenter(32, 56);
  db.objects.push_back(o2);
  db.nets.push_back({"v", {{2, 0, 0}, {3, 0, 0}}, 1.0});
  db.finalize();
  const CongestionMap m = estimateRudy(db, 32, 32);
  // The crossing point carries more demand than either arm alone.
  EXPECT_GT(m.at(32, 32), m.at(16, 32));
  EXPECT_GT(m.at(32, 32), m.at(32, 16));
}

TEST(Rudy, NetWeightScalesDemand) {
  PlacementDB db = twoCellNet(8, 8, 40, 24);
  const CongestionMap m1 = estimateRudy(db, 32, 32);
  db.nets[0].weight = 3.0;
  const CongestionMap m3 = estimateRudy(db, 32, 32);
  EXPECT_NEAR(m3.at(24, 16), 3.0 * m1.at(24, 16), 1e-9);
}

TEST(Rudy, SummaryScoresOrdered) {
  GenSpec spec;
  spec.numCells = 500;
  spec.seed = 8;
  PlacementDB db = generateCircuit(spec);
  const CongestionMap m = estimateRudy(db);
  EXPECT_GE(m.peak, m.hotspot);
  EXPECT_GE(m.hotspot, m.mean);
  EXPECT_GT(m.mean, 0.0);
}

TEST(Routability, RefineReducesHotspotAndStaysLegal) {
  GenSpec spec;
  spec.name = "route";
  spec.numCells = 800;
  spec.locality = 0.9;  // tight clusters -> congestion hotspots
  spec.seed = 12;
  PlacementDB db = generateCircuit(spec);
  runEplaceFlow(db);
  ASSERT_TRUE(checkLegality(db).legal);

  const RoutabilityResult res = routabilityDrivenRefine(db);
  EXPECT_TRUE(res.legal);
  // Hotspot must not get worse; some wirelength cost is acceptable.
  EXPECT_LE(res.hotspotAfter, res.hotspotBefore * 1.02);
  EXPECT_LT(res.hpwlAfter, 1.5 * res.hpwlBefore);
}

TEST(Routability, NoMovableCellsIsNoop) {
  PlacementDB db;
  db.region = {0, 0, 32, 32};
  Object o;
  o.name = "blk";
  o.w = 8;
  o.h = 8;
  o.fixed = true;
  o.kind = ObjKind::kMacro;
  db.objects.push_back(o);
  db.finalize();
  const RoutabilityResult res = routabilityDrivenRefine(db);
  EXPECT_EQ(res.rounds, 0);
  EXPECT_DOUBLE_EQ(res.hpwlBefore, res.hpwlAfter);
}

TEST(Routability, RestoresTrueCellSizes) {
  GenSpec spec;
  spec.numCells = 300;
  spec.seed = 14;
  PlacementDB db = generateCircuit(spec);
  std::vector<double> widths;
  for (const auto& o : db.objects) widths.push_back(o.w);
  runEplaceFlow(db);
  routabilityDrivenRefine(db);
  for (std::size_t i = 0; i < db.objects.size(); ++i) {
    EXPECT_DOUBLE_EQ(db.objects[i].w, widths[i]) << db.objects[i].name;
  }
}

}  // namespace
}  // namespace ep
