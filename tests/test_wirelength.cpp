#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"
#include "wirelength/wl.h"

namespace ep {
namespace {

/// Two movable cells and one fixed pad on a single 3-pin net.
struct Fixture {
  PlacementDB db;
  std::vector<std::int32_t> objToVar;
  std::vector<double> x, y;

  Fixture() {
    db.region = {0, 0, 100, 100};
    for (int i = 0; i < 3; ++i) {
      Object o;
      o.name = "o" + std::to_string(i);
      o.w = 2;
      o.h = 1;
      o.fixed = (i == 2);
      db.objects.push_back(o);
    }
    db.objects[2].setCenter(90, 90);
    Net n;
    n.name = "n";
    n.pins = {{0, 0, 0}, {1, 0, 0}, {2, 0, 0}};
    db.nets.push_back(n);
    db.rows.push_back({0, 0, 1, 1, 100});
    db.finalize();
    objToVar = {0, 1, -1};
    x = {10, 30};
    y = {20, 40};
  }

  [[nodiscard]] VarView view() const { return {&db, objToVar, x, y}; }
};

TEST(Hpwl, SingleNetExact) {
  Fixture f;
  // Pins at (10,20), (30,40), (90,90): HPWL = 80 + 70.
  EXPECT_DOUBLE_EQ(hpwl(f.view()), 150.0);
  // DB-based HPWL uses stored positions.
  f.db.objects[0].setCenter(10, 20);
  f.db.objects[1].setCenter(30, 40);
  EXPECT_DOUBLE_EQ(hpwl(f.db), 150.0);
}

TEST(Hpwl, NetWeightScales) {
  Fixture f;
  f.db.nets[0].weight = 2.5;
  EXPECT_DOUBLE_EQ(hpwl(f.view()), 375.0);
}

TEST(Hpwl, PinOffsetsCount) {
  Fixture f;
  f.db.nets[0].pins[0].ox = -1.0;
  EXPECT_DOUBLE_EQ(hpwl(f.view()), 151.0);
}

TEST(Wa, UnderestimatesAndConvergesToHpwl) {
  Fixture f;
  std::vector<double> gx(2), gy(2);
  const double exact = hpwl(f.view());
  double prev = 0.0;
  for (double gamma : {10.0, 3.0, 1.0, 0.3, 0.1}) {
    const double wa = waWirelengthGrad(f.view(), gamma, gamma, gx, gy);
    EXPECT_LE(wa, exact + 1e-9);
    EXPECT_GE(wa, prev - 1e-9);  // monotone improvement as gamma shrinks
    prev = wa;
  }
  EXPECT_NEAR(prev, exact, 0.05 * exact);
}

TEST(Lse, OverestimatesAndConvergesToHpwl) {
  Fixture f;
  std::vector<double> gx(2), gy(2);
  const double exact = hpwl(f.view());
  for (double gamma : {10.0, 1.0, 0.1}) {
    const double lse = lseWirelengthGrad(f.view(), gamma, gamma, gx, gy);
    EXPECT_GE(lse, exact - 1e-9);
  }
  const double tight = lseWirelengthGrad(f.view(), 0.05, 0.05, gx, gy);
  EXPECT_NEAR(tight, exact, 0.05 * exact);
}

class SmoothGradient : public ::testing::TestWithParam<double> {};

TEST_P(SmoothGradient, WaMatchesFiniteDifference) {
  const double gamma = GetParam();
  Fixture f;
  std::vector<double> gx(2), gy(2), tmpx(2), tmpy(2);
  waWirelengthGrad(f.view(), gamma, gamma, gx, gy);
  const double eps = 1e-6;
  for (std::size_t i = 0; i < 2; ++i) {
    for (bool isX : {true, false}) {
      auto& coord = isX ? f.x[i] : f.y[i];
      const double saved = coord;
      coord = saved + eps;
      const double plus = waWirelengthGrad(f.view(), gamma, gamma, tmpx, tmpy);
      coord = saved - eps;
      const double minus = waWirelengthGrad(f.view(), gamma, gamma, tmpx, tmpy);
      coord = saved;
      const double fd = (plus - minus) / (2 * eps);
      EXPECT_NEAR(fd, isX ? gx[i] : gy[i], 1e-5)
          << "var " << i << (isX ? " x" : " y") << " gamma " << gamma;
    }
  }
}

TEST_P(SmoothGradient, LseMatchesFiniteDifference) {
  const double gamma = GetParam();
  Fixture f;
  std::vector<double> gx(2), gy(2), tmpx(2), tmpy(2);
  lseWirelengthGrad(f.view(), gamma, gamma, gx, gy);
  const double eps = 1e-6;
  for (std::size_t i = 0; i < 2; ++i) {
    const double saved = f.x[i];
    f.x[i] = saved + eps;
    const double plus = lseWirelengthGrad(f.view(), gamma, gamma, tmpx, tmpy);
    f.x[i] = saved - eps;
    const double minus = lseWirelengthGrad(f.view(), gamma, gamma, tmpx, tmpy);
    f.x[i] = saved;
    EXPECT_NEAR((plus - minus) / (2 * eps), gx[i], 1e-5);
  }
}

INSTANTIATE_TEST_SUITE_P(Gammas, SmoothGradient,
                         ::testing::Values(0.5, 1.0, 5.0, 25.0));

TEST(Wa, StableForExtremeCoordinates) {
  // Numerical stability: huge coordinate spread with tiny gamma must not
  // produce NaN/inf (naive exp(x/gamma) would overflow).
  Fixture f;
  f.x = {1e6, -1e6};
  std::vector<double> gx(2), gy(2);
  const double wa = waWirelengthGrad(f.view(), 0.01, 0.01, gx, gy);
  EXPECT_TRUE(std::isfinite(wa));
  EXPECT_TRUE(std::isfinite(gx[0]));
  const double lse = lseWirelengthGrad(f.view(), 0.01, 0.01, gx, gy);
  EXPECT_TRUE(std::isfinite(lse));
}

TEST(Wa, GradientSignsPullInward) {
  Fixture f;
  std::vector<double> gx(2), gy(2);
  waWirelengthGrad(f.view(), 1.0, 1.0, gx, gy);
  // Cell 0 is the leftmost/lowest pin: its gradient is negative (moving it
  // +x shrinks the extent... careful: moving min pin right reduces WL, so
  // d WL / dx < 0).
  EXPECT_LT(gx[0], 0.0);
  EXPECT_LT(gy[0], 0.0);
}

TEST(Wa, MultiPinOnSameObjectAccumulates) {
  Fixture f;
  f.db.nets[0].pins.push_back({0, 0.5, 0.2});
  f.db.finalize();
  std::vector<double> gx(2), gy(2);
  const double w = waWirelengthGrad(f.view(), 1.0, 1.0, gx, gy);
  EXPECT_TRUE(std::isfinite(w));
  EXPECT_TRUE(std::isfinite(gx[0]));
}

TEST(Wa, SinglePinNetIgnored) {
  Fixture f;
  Net n;
  n.name = "single";
  n.pins = {{0, 0, 0}};
  f.db.nets.push_back(n);
  f.db.finalize();
  std::vector<double> gx(2), gy(2);
  const double withSingle = waWirelengthGrad(f.view(), 1.0, 1.0, gx, gy);
  Fixture f2;
  std::vector<double> gx2(2), gy2(2);
  const double without = waWirelengthGrad(f2.view(), 1.0, 1.0, gx2, gy2);
  EXPECT_DOUBLE_EQ(withSingle, without);
}

TEST(GammaSchedule, ShrinksWithOverflow) {
  const double binW = 2.0;
  const double hi = waGammaSchedule(binW, 1.0);
  const double mid = waGammaSchedule(binW, 0.5);
  const double lo = waGammaSchedule(binW, 0.1);
  EXPECT_GT(hi, mid);
  EXPECT_GT(mid, lo);
  // Endpoints: 8 * binW * 10^1 at tau=1 and 8 * binW * 10^-1 at tau=0.1.
  EXPECT_NEAR(hi, 8.0 * binW * 10.0, 1e-9);
  EXPECT_NEAR(lo, 8.0 * binW * 0.1, 1e-6);
  // Clamped outside [0,1].
  EXPECT_DOUBLE_EQ(waGammaSchedule(binW, 2.0), hi);
}

}  // namespace
}  // namespace ep
