// FlowSupervisor: supervised == plain flow bit-exactness, crash-safe
// checkpoint/resume (a killed run continues the exact iteration
// trajectory), corrupt-snapshot fallback, and the per-stage retry /
// fallback paths under injected legalization and detail-placement faults.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "eplace/flow.h"
#include "eplace/supervisor.h"
#include "gen/generator.h"
#include "util/context.h"
#include "util/fault_injector.h"
#include "wirelength/wl.h"

namespace ep {
namespace {

namespace fs = std::filesystem;

/// Thrown from the per-iteration trace hook to emulate a SIGKILL mid-stage:
/// the flow dies at an arbitrary iteration, leaving only what the durable
/// snapshots already captured.
struct KillSignal {};

PlacementDB stdInstance() {
  GenSpec spec;
  spec.name = "sup_std";
  spec.numCells = 300;
  spec.seed = 11;
  return generateCircuit(spec);
}

PlacementDB mixedInstance() {
  GenSpec spec;
  spec.name = "sup_mms";
  spec.numCells = 220;
  spec.numMovableMacros = 2;
  spec.seed = 7;
  return generateCircuit(spec);
}

struct TraceRec {
  std::string stage;
  int iter = 0;
  double hpwl = 0.0;
};

/// Flow config with a per-iteration trace sink and an optional emulated
/// kill point (stage + iteration).
FlowConfig traceConfig(std::vector<TraceRec>* out,
                       std::string killStage = "", int killIter = -1) {
  FlowConfig cfg;
  cfg.gp.maxIterations = 400;
  cfg.gpTrace = [out, killStage = std::move(killStage), killIter](
                    const std::string& stage, const GpIterTrace& it) {
    if (out != nullptr) out->push_back({stage, it.iter, it.hpwl});
    if (it.iter == killIter && stage == killStage) throw KillSignal{};
  };
  return cfg;
}

const StageReport* findStage(const SupervisorReport& rep, FlowStage s) {
  const StageReport* found = nullptr;
  for (const auto& r : rep.stages) {
    if (r.stage == s) found = &r;  // last row for the stage wins
  }
  return found;
}

void expectSamePositions(const PlacementDB& a, const PlacementDB& b) {
  ASSERT_EQ(a.objects.size(), b.objects.size());
  for (std::size_t i = 0; i < a.objects.size(); ++i) {
    EXPECT_EQ(a.objects[i].lx, b.objects[i].lx) << a.objects[i].name;
    EXPECT_EQ(a.objects[i].ly, b.objects[i].ly) << a.objects[i].name;
  }
}

class SupervisorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) /
           ("supervisor_test_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  [[nodiscard]] std::string snapDir() const { return dir_.string(); }

  fs::path dir_;
};

TEST_F(SupervisorTest, SupervisedMatchesPlainFlowBitExact) {
  const FlowConfig cfg = traceConfig(nullptr);
  PlacementDB plain = stdInstance();
  const auto refRun = runEplaceFlowChecked(plain, cfg);
  ASSERT_TRUE(refRun.ok());

  PlacementDB sup = stdInstance();
  SupervisorReport report;
  const auto supRun = runSupervisedFlow(sup, cfg, {}, &report);
  ASSERT_TRUE(supRun.ok());

  // The supervisor drives the same stage functions, so with no faults and
  // no retries the result must be identical down to the last bit.
  EXPECT_EQ(refRun->finalHpwl, supRun->finalHpwl);
  EXPECT_EQ(refRun->legality.legal, supRun->legality.legal);
  expectSamePositions(plain, sup);
  EXPECT_FALSE(report.resumed);
  ASSERT_EQ(report.stages.size(), 3u);  // mIP, mGP, cDP
  for (const auto& r : report.stages) {
    EXPECT_EQ(r.attempts, 1);
    EXPECT_TRUE(r.status.ok());
    EXPECT_FALSE(r.fellBack);
  }
  EXPECT_NE(report.summary().find("mGP"), std::string::npos);
}

TEST_F(SupervisorTest, KilledRunResumesBitExactMidMgp) {
  // Reference: uninterrupted supervised run, trajectory recorded.
  std::vector<TraceRec> refTrace;
  PlacementDB ref = stdInstance();
  const auto refRun = runSupervisedFlow(ref, traceConfig(&refTrace), {});
  ASSERT_TRUE(refRun.ok());

  // "Killed" run: snapshots every 7 iterations, process dies at mGP #23.
  SupervisorConfig supCfg;
  supCfg.snapshotDir = snapDir();
  supCfg.saveEvery = 7;
  {
    PlacementDB killed = stdInstance();
    EXPECT_THROW(
        {
          auto r = runSupervisedFlow(killed, traceConfig(nullptr, "mGP", 23),
                                     supCfg);
          (void)r;
        },
        KillSignal);
  }
  ASSERT_FALSE(fs::is_empty(dir_));

  // Resume in a fresh process image (fresh DB from the same input).
  std::vector<TraceRec> resTrace;
  SupervisorConfig resumeCfg = supCfg;
  resumeCfg.resumeDir = snapDir();
  PlacementDB resumed = stdInstance();
  SupervisorReport report;
  const auto resRun =
      runSupervisedFlow(resumed, traceConfig(&resTrace), resumeCfg, &report);
  ASSERT_TRUE(resRun.ok());
  EXPECT_TRUE(report.resumed);
  EXPECT_EQ(report.resumeStage, FlowStage::kMgp);
  EXPECT_EQ(report.snapshotsRejected, 0);

  // The resumed run restarts at an iteration-aligned snapshot strictly
  // before the kill point and replays the exact trajectory from there.
  ASSERT_FALSE(resTrace.empty());
  EXPECT_GT(resTrace.front().iter, 0);
  EXPECT_LE(resTrace.front().iter, 23);
  std::map<std::pair<std::string, int>, double> refByIter;
  for (const auto& t : refTrace) refByIter[{t.stage, t.iter}] = t.hpwl;
  for (const auto& t : resTrace) {
    const auto it = refByIter.find({t.stage, t.iter});
    ASSERT_NE(it, refByIter.end()) << t.stage << " #" << t.iter;
    EXPECT_EQ(it->second, t.hpwl) << t.stage << " #" << t.iter;
  }
  EXPECT_EQ(refRun->finalHpwl, resRun->finalHpwl);
  expectSamePositions(ref, resumed);
}

TEST_F(SupervisorTest, KilledRunResumesBitExactMidCgp) {
  std::vector<TraceRec> refTrace;
  PlacementDB ref = mixedInstance();
  const auto refRun = runSupervisedFlow(ref, traceConfig(&refTrace), {});
  ASSERT_TRUE(refRun.ok());

  SupervisorConfig supCfg;
  supCfg.snapshotDir = snapDir();
  supCfg.saveEvery = 6;
  {
    PlacementDB killed = mixedInstance();
    EXPECT_THROW(
        {
          auto r = runSupervisedFlow(killed, traceConfig(nullptr, "cGP", 15),
                                     supCfg);
          (void)r;
        },
        KillSignal);
  }

  std::vector<TraceRec> resTrace;
  SupervisorConfig resumeCfg = supCfg;
  resumeCfg.resumeDir = snapDir();
  PlacementDB resumed = mixedInstance();
  SupervisorReport report;
  const auto resRun =
      runSupervisedFlow(resumed, traceConfig(&resTrace), resumeCfg, &report);
  ASSERT_TRUE(resRun.ok());
  EXPECT_TRUE(report.resumed);
  EXPECT_EQ(report.resumeStage, FlowStage::kCgp);

  // Only cGP re-runs; mIP/mGP/mLG come from the snapshot.
  for (const auto& t : resTrace) EXPECT_EQ(t.stage, "cGP");
  std::map<int, double> refCgp;
  for (const auto& t : refTrace) {
    if (t.stage == "cGP") refCgp[t.iter] = t.hpwl;
  }
  for (const auto& t : resTrace) {
    const auto it = refCgp.find(t.iter);
    ASSERT_NE(it, refCgp.end()) << "cGP #" << t.iter;
    EXPECT_EQ(it->second, t.hpwl) << "cGP #" << t.iter;
  }
  EXPECT_EQ(refRun->finalHpwl, resRun->finalHpwl);
  // Acceptance bound from the issue: within 0.1% (bit-exact in practice).
  EXPECT_NEAR(resRun->finalHpwl, refRun->finalHpwl,
              1e-3 * refRun->finalHpwl);
  expectSamePositions(ref, resumed);
}

TEST_F(SupervisorTest, CorruptSnapshotsFallBackToPreviousGoodOne) {
  std::vector<TraceRec> refTrace;
  PlacementDB ref = stdInstance();
  const auto refRun = runSupervisedFlow(ref, traceConfig(&refTrace), {});
  ASSERT_TRUE(refRun.ok());

  SupervisorConfig supCfg;
  supCfg.snapshotDir = snapDir();
  supCfg.saveEvery = 7;
  supCfg.keepSnapshots = 8;
  {
    PlacementDB killed = stdInstance();
    EXPECT_THROW(
        {
          auto r = runSupervisedFlow(killed, traceConfig(nullptr, "mGP", 23),
                                     supCfg);
          (void)r;
        },
        KillSignal);
  }

  // Corrupt the two newest snapshots: bit-flip one, truncate the other.
  std::vector<fs::path> files;
  for (const auto& e : fs::directory_iterator(dir_)) files.push_back(e.path());
  std::sort(files.begin(), files.end());
  ASSERT_GE(files.size(), 3u);
  {
    const auto mid = static_cast<std::streamoff>(fs::file_size(files.back()) / 2);
    std::fstream f(files.back(),
                   std::ios::in | std::ios::out | std::ios::binary);
    f.seekg(mid);
    char byte = 0;
    f.get(byte);
    f.seekp(mid);
    f.put(static_cast<char>(byte ^ 0x40));
  }
  fs::resize_file(files[files.size() - 2],
                  fs::file_size(files[files.size() - 2]) / 3);

  SupervisorConfig resumeCfg = supCfg;
  resumeCfg.resumeDir = snapDir();
  PlacementDB resumed = stdInstance();
  SupervisorReport report;
  const auto resRun =
      runSupervisedFlow(resumed, traceConfig(nullptr), resumeCfg, &report);
  ASSERT_TRUE(resRun.ok());
  EXPECT_TRUE(report.resumed);
  EXPECT_GE(report.snapshotsRejected, 2);
  // The older good snapshot is iteration-aligned too, so the trajectory —
  // and therefore the final result — is still bit-exact.
  EXPECT_EQ(refRun->finalHpwl, resRun->finalHpwl);
  expectSamePositions(ref, resumed);
}

TEST_F(SupervisorTest, LegalizeFaultRetriesThenFallsBackToGreedy) {
  // Corrupt every Abacus legalization pass: the supervisor must retry,
  // then fall back to the greedy (Tetris-only) legalizer and still deliver
  // a legal placement with an OK typed status.
  RuntimeContext ctx;
  ctx.faults().arm(
      "legalize.displace",
      {FaultKind::kSpike, /*atTick=*/0, /*count=*/-1, /*magnitude=*/1e9});
  PlacementDB db = stdInstance();
  SupervisorReport report;
  const auto run =
      runSupervisedFlow(db, traceConfig(nullptr), {}, &report, &ctx);
  ASSERT_TRUE(run.ok());
  EXPECT_TRUE(run->status.ok()) << run->status.toString();
  EXPECT_TRUE(run->legality.legal) << run->legality.firstIssue;

  const StageReport* cdp = findStage(report, FlowStage::kCdp);
  ASSERT_NE(cdp, nullptr);
  EXPECT_TRUE(cdp->fellBack);
  EXPECT_GE(cdp->attempts, 3);  // two corrupted Abacus tries + greedy
  EXPECT_NE(cdp->note.find("greedy"), std::string::npos) << cdp->note;
}

TEST_F(SupervisorTest, DetailFaultRollsBackToLegalizedPlacement) {
  RuntimeContext ctx;
  ctx.faults().arm("detail.swap",
                   {FaultKind::kNaN, /*atTick=*/0, /*count=*/-1});
  PlacementDB db = stdInstance();
  SupervisorReport report;
  const auto run =
      runSupervisedFlow(db, traceConfig(nullptr), {}, &report, &ctx);
  ASSERT_TRUE(run.ok());
  EXPECT_TRUE(run->status.ok()) << run->status.toString();
  EXPECT_TRUE(run->legality.legal) << run->legality.firstIssue;

  const StageReport* cdp = findStage(report, FlowStage::kCdp);
  ASSERT_NE(cdp, nullptr);
  EXPECT_TRUE(cdp->fellBack);
  EXPECT_NE(cdp->note.find("detail"), std::string::npos) << cdp->note;
  // The deliverable is exactly the post-legalization placement.
  EXPECT_EQ(run->finalHpwl, run->legalizeResult.hpwlAfter);
  EXPECT_TRUE(std::isfinite(hpwl(db)));
}

}  // namespace
}  // namespace ep
