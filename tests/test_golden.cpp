// Golden-metrics regression suite (ctest label: golden).
//
// Three fixed generator seeds run mGP end-to-end; the final HPWL, density
// overflow and iteration count are compared against committed golden JSON
// files in tests/goldens/. The kernels are thread-count deterministic, so
// on the platform that recorded a golden the metrics reproduce exactly;
// the tolerances below only absorb cross-platform libm/FP differences.
//
// Updating the goldens (after an intentional algorithmic change):
//
//   EP_UPDATE_GOLDENS=1 ./build/tests/test_golden
//
// rewrites every golden file in the source tree (the directory is baked in
// via the EP_GOLDEN_DIR compile definition) and reports the runs as passed.
// Commit the regenerated files together with the change that shifted them,
// and say why in the commit message.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "eplace/global_placer.h"
#include "gen/generator.h"
#include "qp/initial_place.h"
#include "util/parallel.h"

namespace ep {
namespace {

#ifndef EP_GOLDEN_DIR
#error "EP_GOLDEN_DIR must point at tests/goldens (set in CMakeLists.txt)"
#endif

struct GoldenCase {
  std::uint64_t seed;
  std::size_t cells;
};

constexpr GoldenCase kCases[] = {{31, 400}, {32, 500}, {33, 600}};

struct Metrics {
  double hpwl = 0.0;
  double overflow = 0.0;
  int iterations = 0;
};

Metrics runCase(const GoldenCase& c) {
  GenSpec spec;
  spec.name = "golden";
  spec.numCells = c.cells;
  spec.seed = c.seed;
  PlacementDB db = generateCircuit(spec);
  quadraticInitialPlace(db);
  GlobalPlacer gp(db, db.movable(), GpConfig{});
  gp.makeFillersFromDb();
  const GpResult res = gp.run();
  EXPECT_TRUE(res.status.ok()) << res.status.toString();
  EXPECT_TRUE(res.converged);
  return {res.finalHpwl, res.finalOverflow, res.iterations};
}

std::string goldenPath(const GoldenCase& c) {
  return std::string(EP_GOLDEN_DIR) + "/mgp_seed" + std::to_string(c.seed) +
         ".json";
}

/// Minimal extractor for the flat one-object JSON written below: finds
/// `"key":` and parses the number that follows.
bool jsonNumber(const std::string& text, const std::string& key,
                double* out) {
  const std::string needle = "\"" + key + "\":";
  const auto pos = text.find(needle);
  if (pos == std::string::npos) return false;
  *out = std::strtod(text.c_str() + pos + needle.size(), nullptr);
  return true;
}

void writeGolden(const GoldenCase& c, const Metrics& m) {
  std::ofstream f(goldenPath(c));
  ASSERT_TRUE(f.good()) << "cannot write " << goldenPath(c);
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "{\n"
                "  \"seed\": %llu,\n"
                "  \"cells\": %zu,\n"
                "  \"hpwl\": %.17g,\n"
                "  \"overflow\": %.17g,\n"
                "  \"iterations\": %d\n"
                "}\n",
                static_cast<unsigned long long>(c.seed), c.cells, m.hpwl,
                m.overflow, m.iterations);
  f << buf;
}

class GoldenMetrics : public ::testing::TestWithParam<int> {};

TEST_P(GoldenMetrics, MgpMatchesCommittedGolden) {
  const GoldenCase& c = kCases[GetParam()];
  const Metrics m = runCase(c);

  if (std::getenv("EP_UPDATE_GOLDENS") != nullptr) {
    writeGolden(c, m);
    std::printf("updated %s (hpwl %.17g, overflow %.17g, iters %d)\n",
                goldenPath(c).c_str(), m.hpwl, m.overflow, m.iterations);
    return;
  }

  std::ifstream f(goldenPath(c));
  ASSERT_TRUE(f.good()) << "missing golden " << goldenPath(c)
                        << "; run EP_UPDATE_GOLDENS=1 ./test_golden";
  std::stringstream ss;
  ss << f.rdbuf();
  const std::string text = ss.str();

  double goldHpwl = 0.0, goldOverflow = 0.0, goldIters = 0.0;
  ASSERT_TRUE(jsonNumber(text, "hpwl", &goldHpwl));
  ASSERT_TRUE(jsonNumber(text, "overflow", &goldOverflow));
  ASSERT_TRUE(jsonNumber(text, "iterations", &goldIters));

  EXPECT_NEAR(m.hpwl, goldHpwl, 2e-4 * goldHpwl)
      << "seed " << c.seed << ": HPWL drifted from the committed golden";
  EXPECT_NEAR(m.overflow, goldOverflow, 2e-3)
      << "seed " << c.seed << ": overflow drifted";
  EXPECT_NEAR(static_cast<double>(m.iterations), goldIters, 2.0)
      << "seed " << c.seed << ": iteration count drifted";
}

INSTANTIATE_TEST_SUITE_P(Seeds, GoldenMetrics, ::testing::Values(0, 1, 2));

}  // namespace
}  // namespace ep
