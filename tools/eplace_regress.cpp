// eplace_regress — noise-aware quality/perf regression gate over RunRecords.
//
// Diffs one or more candidate run records (produced by eplace_cli
// --record-out, the serve daemon, or bench runs) against a committed
// baseline. Deterministic fields (HPWL bits, iterations, overflow, retry and
// rollback counts at fixed seed/threads) must match bit-for-bit; wall-clock
// fields compare the median of the candidates against a one-sided percentage
// band so scheduler noise cannot flake the gate while a real slowdown still
// fails it.
//
// Usage:
//   eplace_regress --baseline tests/baselines/cli_demo.json
//                  --candidate run1.json [--candidate run2.json ...]
//                  [--wall-band 0.5] [--min-wall-ms 20] [--no-wall]
//                  [--update]
//
// Exit codes: 0 gate passed, 1 gate failed, 2 usage / I/O error.
//
// --update (or EP_UPDATE_BASELINES=1 in the environment) rewrites the
// baseline from the first candidate instead of comparing — the same
// regeneration workflow as the goldens (EP_UPDATE_GOLDENS).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "util/run_record.h"
#include "util/status.h"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --baseline <file> --candidate <file> "
               "[--candidate <file> ...]\n"
               "          [--wall-band <frac>] [--min-wall-ms <ms>] "
               "[--no-wall] [--update]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string baselinePath;
  std::vector<std::string> candidatePaths;
  ep::RegressPolicy policy;
  bool update = false;
  if (const char* env = std::getenv("EP_UPDATE_BASELINES");
      env != nullptr && std::strcmp(env, "0") != 0 && env[0] != '\0') {
    update = true;
  }

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--baseline" && i + 1 < argc) {
      baselinePath = argv[++i];
    } else if (arg == "--candidate" && i + 1 < argc) {
      candidatePaths.emplace_back(argv[++i]);
    } else if (arg == "--wall-band" && i + 1 < argc) {
      policy.wallBandFrac = std::atof(argv[++i]);
    } else if (arg == "--min-wall-ms" && i + 1 < argc) {
      policy.minWallMs = std::atof(argv[++i]);
    } else if (arg == "--no-wall") {
      policy.checkWall = false;
    } else if (arg == "--update") {
      update = true;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return usage(argv[0]);
    }
  }
  if (baselinePath.empty() || candidatePaths.empty()) return usage(argv[0]);

  std::vector<ep::RunRecord> candidates;
  candidates.reserve(candidatePaths.size());
  for (const std::string& path : candidatePaths) {
    ep::StatusOr<ep::RunRecord> rec = ep::readRunRecordFile(path);
    if (!rec.ok()) {
      std::fprintf(stderr, "candidate %s: %s\n", path.c_str(),
                   rec.status().toString().c_str());
      return 2;
    }
    candidates.push_back(std::move(rec).value());
  }

  if (update) {
    const ep::Status wr = ep::writeRunRecordFile(baselinePath, candidates[0]);
    if (!wr.ok()) {
      std::fprintf(stderr, "baseline update %s: %s\n", baselinePath.c_str(),
                   wr.toString().c_str());
      return 2;
    }
    std::printf("baseline updated: %s (from %s)\n", baselinePath.c_str(),
                candidatePaths[0].c_str());
    return 0;
  }

  ep::StatusOr<ep::RunRecord> baseline = ep::readRunRecordFile(baselinePath);
  if (!baseline.ok()) {
    std::fprintf(stderr, "baseline %s: %s\n", baselinePath.c_str(),
                 baseline.status().toString().c_str());
    return 2;
  }

  const ep::RegressResult res =
      ep::compareRunRecords(baseline.value(), candidates, policy);
  const std::string report = res.summary();
  if (!report.empty()) std::fputs(report.c_str(), stdout);
  if (res.pass) {
    std::printf("regression gate PASSED: %s vs %zu candidate run(s)\n",
                baselinePath.c_str(), candidates.size());
    return 0;
  }
  std::printf("regression gate FAILED: %s vs %zu candidate run(s)\n",
              baselinePath.c_str(), candidates.size());
  return 1;
}
