// Table I reproduction: HPWL and runtime on the ISPD-2005-like suite
// (standard cells only, rho_t = 1, fixed macro blocks).
//
// Columns are one representative per category of the paper's 12 competitors:
//   MinCut ~ Capo10.5 (min-cut), Quad ~ FastPlace3/ComPLx/BonnPlace
//   (quadratic), Bell ~ APlace3/NTUplace3 (nonlinear CG + bell density),
//   and ePlace.
//
// Paper expectation (Table I): ePlace shortest HPWL on all 8 circuits;
// min-cut worst (~+21%); quadratic ~+3-10%; prior nonlinear ~+12-14%.
#include "common.h"

int main(int argc, char** argv) {
  using namespace ep;
  using namespace ep::bench;
  auto suite = ispd2005Suite();
  if (fastMode(argc, argv)) suite.resize(3);

  std::printf("=== Table I: ISPD-2005-like suite (HPWL x1e3, rho_t = 1.0) ===\n");
  std::printf("%-22s %10s %10s %10s %10s   legal\n", "circuit", "MinCut",
              "Quad", "Bell", "ePlace");

  std::vector<double> hp[4], rt[4];
  for (const auto& spec : suite) {
    const RunMetrics m[4] = {runMinCut(spec), runQuadratic(spec),
                             runBell(spec), runEplace(spec)};
    for (int p = 0; p < 4; ++p) {
      hp[p].push_back(m[p].hpwl);
      rt[p].push_back(m[p].seconds);
    }
    std::printf("%-22s %10.2f %10.2f %10.2f %10.2f   %c%c%c%c\n",
                spec.name.c_str(), m[0].hpwl / 1e3, m[1].hpwl / 1e3,
                m[2].hpwl / 1e3, m[3].hpwl / 1e3, m[0].legal ? 'y' : 'n',
                m[1].legal ? 'y' : 'n', m[2].legal ? 'y' : 'n',
                m[3].legal ? 'y' : 'n');
  }

  std::printf("\n%-22s %9.2f%% %9.2f%% %9.2f%% %9.2f%%\n", "avg HPWL vs ePlace",
              (meanRatio(hp[0], hp[3]) - 1.0) * 100.0,
              (meanRatio(hp[1], hp[3]) - 1.0) * 100.0,
              (meanRatio(hp[2], hp[3]) - 1.0) * 100.0, 0.0);
  std::printf("%-22s %9.2fx %9.2fx %9.2fx %9.2fx\n", "avg runtime vs ePlace",
              meanRatio(rt[0], rt[3]), meanRatio(rt[1], rt[3]),
              meanRatio(rt[2], rt[3]), 1.0);
  std::printf(
      "\npaper Table I: min-cut +21.1%%, quadratic +2.8..10%%, prior "
      "nonlinear +12..14%%, ePlace best on 8/8.\n");
  return 0;
}
