// Hot-path scaling benchmark: per-kernel ns/op and end-to-end mGP/cGP wall
// time at 1, 2 and 4 worker threads. Emits BENCH_hotpaths.json in the CWD.
//
//   bench_hotpaths [--smoke]
//
// --smoke shrinks the instance and runs each kernel once (the perf-smoke
// ctest entry uses it as a does-it-run gate, not a measurement).
//
// Reading the output (docs/PERFORMANCE.md has the full guide):
//  * "hw_concurrency" is the machine's core count. Speedups only manifest
//    when it exceeds the thread count — on a 1-core container every
//    configuration runs the same work sequentially, so ns/op is flat there
//    by construction, not by defect.
//  * "kernels": per-kernel mean ns per call at each thread count.
//  * "end_to_end": mGP/cGP stage seconds per thread count on the same
//    instance, plus the final HPWL bits so identical results are checkable.
//  * "bit_identical": true iff every thread count produced bit-identical
//    final HPWL — the determinism contract, asserted here on real runs.
//  * "batch_2x": two concurrent placer sessions (4 threads split between
//    them) against the same two jobs run back-to-back; wall seconds,
//    speedup, and whether both orders were bit-identical per design.
//  * "serve_roundtrip": eplace_serve daemon overhead — ping round-trip ns
//    over the AF_UNIX socket and submit->wait seconds on a tiny job.
//  * "budget_overhead": the hottest kernels re-timed with a MemoryBudget
//    attached — budgets charge only on arena growth (warm-up), so the
//    steady-state deltas must be noise and bytes_charged_steady_state 0.
#include <atomic>
#include <cinttypes>
#include <filesystem>
#include <thread>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <bit>
#include <cstdint>
#include <new>
#include <string>
#include <vector>

#include "bookshelf/bookshelf.h"
#include "density/electro.h"
#include "eplace/flow.h"
#include "fft/plan.h"
#include "eplace/session.h"
#include "eplace/supervisor.h"
#include "eval/metrics.h"
#include "gen/generator.h"
#include "gen/suites.h"
#include "qp/initial_place.h"
#include "serve/client.h"
#include "serve/daemon.h"
#include "model/netlist.h"
#include "model/placement_view.h"
#include "util/context.h"
#include "util/io.h"
#include "util/jsonlite.h"
#include "util/memory_budget.h"
#include "util/parallel.h"
#include "util/run_record.h"
#include "util/timer.h"
#include "wirelength/wl.h"

// --- allocation counter (this binary only) ----------------------------------
// Replacing the global operator new lets the bench attribute heap traffic to
// each kernel and flow stage: after arena warm-up the steady-state Nesterov
// inner loop must allocate nothing, and the JSON below records the proof.
namespace {
std::atomic<std::uint64_t> gAllocCount{0};
}  // namespace

void* operator new(std::size_t sz) {
  gAllocCount.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(sz ? sz : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t sz) { return ::operator new(sz); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace ep;

std::uint64_t allocCount() {
  return gAllocCount.load(std::memory_order_relaxed);
}

struct KernelRow {
  std::string name;
  int threads;
  double nsPerOp;
  double allocsPerOp;  // steady-state heap allocations per call
};

struct EndToEndRow {
  int threads;
  double mgpSeconds;
  double cgpSeconds;
  double finalHpwl;
  std::uint64_t flowAllocs;  // allocations across the whole mGP+mLG+cGP run
};

double timeNs(int reps, const auto& fn) {
  Timer t;
  for (int r = 0; r < reps; ++r) fn();
  return t.seconds() * 1e9 / static_cast<double>(reps);
}

/// Time a kernel and count its steady-state allocations: one untimed
/// warm-up call lets scratch arenas grow, then the timed reps must run
/// allocation-free for the zero-steady-state-alloc contract to hold.
KernelRow measure(const char* name, int threads, int reps, const auto& fn) {
  fn();  // warm-up (arena growth happens here, not in the timed region)
  const std::uint64_t a0 = allocCount();
  const double ns = timeNs(reps, fn);
  const std::uint64_t a1 = allocCount();
  return {name, threads, ns,
          static_cast<double>(a1 - a0) / static_cast<double>(reps)};
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string kernelRecordPath;  // --kernel-record <path>: kernels-only mode
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--kernel-record") == 0 && i + 1 < argc) {
      kernelRecordPath = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--smoke] [--kernel-record <path>]\n", argv[0]);
      return 2;
    }
  }
  const int kernelReps = smoke ? 1 : 20;
  const std::size_t cells = smoke ? 400 : 4000;
  const std::vector<int> threadCounts =
      kernelRecordPath.empty() ? std::vector<int>{1, 2, 4}
                               : std::vector<int>{1};

  // --- per-kernel timings on a fixed mid-GP-like state ----------------------
  GenSpec spec;
  spec.name = "hotpaths";
  spec.numCells = cells;
  spec.seed = 42;
  PlacementDB db = generateCircuit(spec);
  quadraticInitialPlace(db);

  const auto movables = db.movable();
  const std::size_t nVars = movables.size();
  std::vector<std::int32_t> objToVar(db.objects.size(), -1);
  std::vector<double> x(nVars), y(nVars), w(nVars), h(nVars);
  for (std::size_t v = 0; v < nVars; ++v) {
    const auto obj = static_cast<std::size_t>(movables[v]);
    objToVar[obj] = static_cast<std::int32_t>(v);
    const Point c = db.objects[obj].center();
    x[v] = c.x;
    y[v] = c.y;
    w[v] = db.objects[obj].w;
    h[v] = db.objects[obj].h;
  }
  const ChargeView charges{x, y, w, h};
  const std::size_t dim = BinGrid::chooseResolution(nVars);
  ElectroDensity density(db.region, dim, dim, db.targetDensity);
  density.stampFixed(db);
  WlEvaluator wlEval(db, objToVar, nVars);
  const VarView view{&db, objToVar, x, y};
  const double gamma = waGammaSchedule(db.region.width() /
                                           static_cast<double>(dim), 0.5);
  std::vector<double> gx(nVars), gy(nVars);

  // view_gather sweeps the SoA geometry arrays the way the GP engine seeds
  // its variable vector: movable centers gathered through the remap.
  db.view().syncPositionsFromDb(db);
  const PlacementView& pv = db.view();
  const auto vMov = pv.movable();
  const auto vLx = pv.lx();
  const auto vLy = pv.ly();
  const auto vW = pv.w();
  const auto vH = pv.h();

  std::vector<KernelRow> kernels;
  for (const int nt : threadCounts) {
    ThreadPool pool(nt);
    ThreadPool* p = &pool;
    kernels.push_back(measure("density_update", nt, kernelReps, [&] {
      density.update(charges, p);
    }));
    kernels.push_back(measure("density_gradient", nt, kernelReps, [&] {
      density.gradient(charges, gx, gy, p);
    }));
    kernels.push_back(measure("wa_gradient", nt, kernelReps, [&] {
      wlEval.waGrad(view, gamma, gamma, gx, gy, p);
    }));
    kernels.push_back(measure("hpwl", nt, kernelReps, [&] {
      wlEval.hpwl(view, p);
    }));
    kernels.push_back(measure("view_gather", nt, kernelReps, [&] {
      pool.parallelFor(nVars, [&](std::size_t, std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i) {
          const auto obj = static_cast<std::size_t>(vMov[i]);
          gx[i] = vLx[obj] + vW[obj] * 0.5;
          gy[i] = vLy[obj] + vH[obj] * 0.5;
        }
      });
    }));
    std::printf("threads=%d done (%zu cells, grid %zu^2)\n", nt, nVars, dim);
  }

  // --kernel-record: spectral-core wall gate mode. The 1-thread ns/op of
  // the two gated kernels is written as RunRecord stage wallMs (ns/op /
  // 1e6), then the process exits; the CI regression lane runs this three
  // times and eplace_regress gates the median against the committed
  // tests/baselines/kernel_hotpaths.json (--min-wall-ms 0 because these
  // rows are sub-millisecond, --wall-band sized for cross-machine noise).
  if (!kernelRecordPath.empty()) {
    RunRecord krec;
    krec.name = "kernel_hotpaths";
    krec.fingerprint = netlistFingerprint(db);
    krec.seed = spec.seed;
    krec.threads = 1;
    for (const auto& k : kernels) {
      if (k.threads != 1) continue;
      if (k.name != "density_update" && k.name != "wa_gradient") continue;
      StageRecord s;
      s.stage = "kernel." + k.name;
      s.ran = true;
      s.wallMs = k.nsPerOp / 1e6;
      s.iterations = kernelReps;
      krec.stages.push_back(s);
    }
    const Status wr = writeRunRecordFile(kernelRecordPath, krec);
    if (!wr.ok()) {
      std::fprintf(stderr, "kernel record write failed: %s\n",
                   wr.toString().c_str());
      return 2;
    }
    std::printf("wrote kernel record %s\n", kernelRecordPath.c_str());
    return 0;
  }

  // --- planned-transform sweep: 2-D DCT ns/op per solver grid size ----------
  // One row per SpectralPlan size the Poisson solver can plan (the bin grid
  // resolutions), serial, measuring the full separable 2-D analysis. The
  // allocs/op column proves the plan + workspace are warm-up-only.
  struct SweepRow {
    std::size_t n;
    double nsPerOp;
    double allocsPerOp;
  };
  std::vector<SweepRow> sweepRows;
  for (const std::size_t n : {64u, 128u, 256u, 512u, 1024u}) {
    if (smoke && n > 128) break;
    SpectralPlan plan(n);
    std::vector<double> tgrid(n * n);
    for (std::size_t b = 0; b < tgrid.size(); ++b) {
      tgrid[b] = 0.5 + 0.25 * static_cast<double>(b % 13) -
                 0.125 * static_cast<double>(b % 5);
    }
    Spectral2dWorkspace tws;
    const int reps =
        smoke ? 1
              : static_cast<int>(std::max<std::size_t>(
                    2, (std::size_t{256} * 256 * 8) / (n * n)));
    const KernelRow row =
        measure(("dct2d_" + std::to_string(n)).c_str(), 1, reps, [&] {
          spectral2d(tgrid, n, n, plan, plan, TrigOp::kDct2, TrigOp::kDct2,
                     nullptr, &tws);
        });
    sweepRows.push_back({n, row.nsPerOp, row.allocsPerOp});
    std::printf("dct2d_%zu: %.1f ns/op, %.2f allocs/op\n", n, row.nsPerOp,
                row.allocsPerOp);
  }

  // --- budget overhead: the same hot kernels with governance armed ----------
  // MemoryBudget charges happen only on arena growth (one relaxed atomic
  // per growth event) and growth only happens at warm-up, so the
  // steady-state delta must be noise. These rows are the recorded proof:
  // ns/op budgeted vs unbudgeted for the two hottest kernels, plus the
  // arena borrow itself, plus the number of bytes charged inside the timed
  // region (must be 0).
  KernelRow densityBudgeted{}, waBudgeted{};
  double arenaPlainNs = 0.0, arenaBudgetNs = 0.0;
  std::uint64_t budgetTimedDelta = 0;
  {
    MemoryBudget benchBudget;
    benchBudget.setLimit(std::size_t{4} << 30);  // generous: never breaches
    ScratchArena& arena = db.view().arena();
    ThreadPool pool(1);
    ThreadPool* p = &pool;
    const int borrowReps = smoke ? 10 : 20000;
    (void)arena.doubles("bench.buf", nVars);  // warm-up growth
    arenaPlainNs =
        timeNs(borrowReps, [&] { (void)arena.doubles("bench.buf", nVars); });
    arena.setBudget(&benchBudget);
    arenaBudgetNs =
        timeNs(borrowReps, [&] { (void)arena.doubles("bench.buf", nVars); });
    const std::uint64_t used0 = benchBudget.usedBytes();
    densityBudgeted = measure("density_update_budgeted", 1, kernelReps,
                              [&] { density.update(charges, p); });
    waBudgeted = measure("wa_gradient_budgeted", 1, kernelReps, [&] {
      wlEval.waGrad(view, gamma, gamma, gx, gy, p);
    });
    budgetTimedDelta = benchBudget.usedBytes() - used0;
    arena.setBudget(nullptr);
    std::printf("budget overhead: density %.1f ns, wa %.1f ns, arena "
                "%.1f->%.1f ns, %" PRIu64 " bytes charged steady-state\n",
                densityBudgeted.nsPerOp, waBudgeted.nsPerOp, arenaPlainNs,
                arenaBudgetNs, budgetTimedDelta);
  }

  // --- end-to-end mGP + cGP on a mixed-size instance ------------------------
  GenSpec flowSpec;
  flowSpec.name = "hotpaths_flow";
  flowSpec.numCells = smoke ? 200 : 1500;
  flowSpec.numMovableMacros = 4;
  flowSpec.seed = 43;
  std::vector<EndToEndRow> endToEnd;
  bool bitIdentical = true;
  FlowConfig flowCfg;
  flowCfg.runDetail = false;
  if (smoke) flowCfg.gp.maxIterations = 1;  // does-it-run gate only
  if (smoke) flowCfg.gp.minIterations = 0;
  std::filesystem::create_directories("bench_results");
  for (const int nt : threadCounts) {
    RuntimeContext ctx(nt);
    PlacementDB run = generateCircuit(flowSpec);
    const std::uint64_t a0 = allocCount();
    const FlowResult res = runEplaceFlow(run, flowCfg, &ctx);
    const std::uint64_t flowAllocs = allocCount() - a0;
    // Accumulate a structured run record per thread count so regression
    // tooling can diff bench runs the same way it diffs CLI/serve runs.
    const RunRecord rec = buildRunRecord(run, res, nullptr, &ctx, false);
    const Status recWr = writeRunRecordFile(
        "bench_results/hotpaths_flow_t" + std::to_string(nt) + ".json", rec);
    if (!recWr.ok()) {
      std::fprintf(stderr, "record write failed: %s\n",
                   recWr.toString().c_str());
    }
    endToEnd.push_back(
        {nt, res.mgp.seconds, res.cgp.seconds, res.finalHpwl, flowAllocs});
    if (std::bit_cast<std::uint64_t>(res.finalHpwl) !=
        std::bit_cast<std::uint64_t>(endToEnd.front().finalHpwl)) {
      bitIdentical = false;
    }
    std::printf("end-to-end threads=%d: mGP %.2fs, cGP %.2fs, HPWL %.6g, "
                "%" PRIu64 " allocs\n",
                nt, res.mgp.seconds, res.cgp.seconds, res.finalHpwl,
                flowAllocs);
  }

  // --- batch: 2 concurrent sessions vs the same 2 jobs sequentially ---------
  namespace fs = std::filesystem;
  const fs::path batchDir = fs::temp_directory_path() / "bench_hotpaths_batch";
  fs::remove_all(batchDir);
  fs::create_directories(batchDir);
  double batchSeqSeconds = 0.0;
  double batchConcSeconds = 0.0;
  bool batchIdentical = true;
  {
    const PlacementDB gen = generateCircuit(flowSpec);
    if (!writeBookshelf(batchDir.string(), "hotpaths_flow", gen).ok()) {
      std::fprintf(stderr, "cannot stage batch instance; batch row is 0s\n");
    } else {
      const std::string aux = (batchDir / "hotpaths_flow.aux").string();
      const std::vector<BatchItem> items{{aux, "batch_a"}, {aux, "batch_b"}};
      BatchOptions conc;
      conc.maxConcurrentSessions = 2;
      conc.totalThreads = 4;  // 2 worker threads per in-flight session
      conc.session.flow = flowCfg;
      BatchOptions seq = conc;  // same jobs, same total budget, one at a time
      seq.maxConcurrentSessions = 1;
      const BatchResult sr = runPlacerBatch(items, seq);
      const BatchResult cr = runPlacerBatch(items, conc);
      batchSeqSeconds = sr.totalSeconds;
      batchConcSeconds = cr.totalSeconds;
      batchIdentical = sr.allOk() && cr.allOk();
      for (std::size_t i = 0; batchIdentical && i < items.size(); ++i) {
        batchIdentical =
            std::bit_cast<std::uint64_t>(sr.items[i].flow.finalHpwl) ==
            std::bit_cast<std::uint64_t>(cr.items[i].flow.finalHpwl);
      }
      std::printf("batch 2x: sequential %.2fs, concurrent %.2fs, "
                  "identical=%s\n",
                  batchSeqSeconds, batchConcSeconds,
                  batchIdentical ? "true" : "false");
    }
  }
  fs::remove_all(batchDir);

  // --- serve round-trip: protocol overhead of the placement daemon ----------
  // ping ns = pure wire + dispatch cost; seconds_per_job = submit->wait on a
  // tiny job, i.e. what the daemon adds around the placement itself.
  double servePingNs = 0.0;
  double serveSecondsPerJob = 0.0;
  bool serveOk = true;
  {
    const fs::path serveRoot = fs::temp_directory_path() / "bench_serve";
    fs::remove_all(serveRoot);
    serve::ServeOptions sopt;
    sopt.socketPath =
        (fs::temp_directory_path() / "bench_serve.sock").string();
    sopt.root = serveRoot.string();
    sopt.workers = 1;
    sopt.logLevel = LogLevel::kOff;
    fs::remove(sopt.socketPath);
    serve::ServeDaemon daemon(sopt);
    if (!daemon.start().ok()) {
      std::fprintf(stderr, "serve daemon failed to start; serve row is 0\n");
      serveOk = false;
    } else {
      serve::ServeClient client;
      serveOk = client.connect(sopt.socketPath).ok();
      if (serveOk) {
        const int pings = smoke ? 50 : 2000;
        (void)client.ping();  // warm-up
        servePingNs = timeNs(pings, [&] { (void)client.ping(); });
        const int jobs = smoke ? 1 : 4;
        serve::JobSpec tiny;
        tiny.name = "bench_tiny";
        tiny.hasGen = true;
        tiny.gen.numCells = smoke ? 120 : 300;
        tiny.gen.seed = 7;
        tiny.gpMaxIterations = smoke ? 1 : 30;
        tiny.runDetail = false;
        Timer jt;
        for (int j = 0; j < jobs && serveOk; ++j) {
          auto id = client.submit(tiny);
          serveOk = id.ok() && client.wait(*id, 300.0).ok();
        }
        serveSecondsPerJob = jt.seconds() / jobs;
        std::printf("serve: ping %.0f ns, %.3f s/job (%d tiny jobs)%s\n",
                    servePingNs, serveSecondsPerJob, jobs,
                    serveOk ? "" : " [FAILED]");
      }
      daemon.requestShutdown();
      daemon.wait();
    }
    fs::remove_all(serveRoot);
    fs::remove(sopt.socketPath);
  }

  // --- scale sweep: flat vs multilevel supervised flow, 1k -> 100k ----------
  // The rows behind docs/SCALING.md: wall seconds and accounted peak bytes
  // per cell count for the flat mGP path and the multilevel V-cycle. A
  // fresh RuntimeContext per run keeps the MemoryBudget peak per-run (RSS
  // is process-cumulative and useless here). At 1k the ladder does not
  // engage (minMovable floor), so that row doubles as an overhead check.
  struct ScaleRow {
    std::size_t cells;
    double seconds[2];           // [flat, multilevel]
    std::uint64_t peakBytes[2];
    double hpwl[2];
    std::size_t levels[2];
  };
  std::vector<ScaleRow> scaleRows;
  {
    const std::vector<const char*> sweep =
        smoke ? std::vector<const char*>{"scale_1k"}
              : std::vector<const char*>{"scale_1k", "scale_10k",
                                         "scale_100k"};
    for (const char* name : sweep) {
      const GenSpec sspec = suiteSpec(name);
      ScaleRow row{};
      row.cells = sspec.numCells;
      for (int ml = 0; ml < 2; ++ml) {
        RuntimeContext ctx(4);
        PlacementDB run = generateCircuit(sspec);
        SupervisorConfig sup;
        sup.multilevel.enabled = ml == 1;
        sup.multilevel.minMovable = 5000;
        FlowConfig scfg;
        if (smoke) {
          scfg.gp.maxIterations = 1;
          scfg.gp.minIterations = 0;
          scfg.runDetail = false;
        }
        Timer st;
        const auto res = runSupervisedFlow(run, scfg, sup, nullptr, &ctx);
        row.seconds[ml] = st.seconds();
        row.peakBytes[ml] = ctx.memory().peakBytes();
        if (res.ok()) {
          row.hpwl[ml] = res->finalHpwl;
          row.levels[ml] = res->mgpLevels.size();
          const RunRecord rec = buildRunRecord(run, *res, nullptr, &ctx);
          const Status wr = writeRunRecordFile(
              std::string("bench_results/hotpaths_scale_") +
                  std::to_string(row.cells) + (ml ? "_ml" : "_flat") +
                  ".json",
              rec);
          if (!wr.ok()) {
            std::fprintf(stderr, "record write failed: %s\n",
                         wr.toString().c_str());
          }
        } else {
          std::fprintf(stderr, "%s %s failed: %s\n", name,
                       ml ? "multilevel" : "flat",
                       res.status().toString().c_str());
        }
        std::printf("scale %zu cells %s: %.1fs, %.0f MiB accounted, "
                    "%zu coarse levels\n",
                    row.cells, ml ? "multilevel" : "flat", row.seconds[ml],
                    static_cast<double>(row.peakBytes[ml]) / (1 << 20),
                    row.levels[ml]);
      }
      scaleRows.push_back(row);
    }
  }
  // Retention: bench runs accumulate one record per thread count plus two
  // per sweep size; rotate oldest-first (lexicographic names) past 32.
  pruneRecordFiles("bench_results", "hotpaths", 32);

  // --- emit JSON (shared jsonlite writer: escaping and NaN/Inf handling
  // live in one place, and the output is parseable by the same codec the
  // regression tooling uses) -------------------------------------------------
  JsonValue root = JsonValue::object();
  root.set("smoke", JsonValue::boolean(smoke));
  root.set("hw_concurrency",
           JsonValue::number(std::thread::hardware_concurrency()));
  {
    // Toolchain/ISA provenance: ns/op rows are only comparable between runs
    // built with the same compiler and vector ISA, so record both.
    JsonValue tc = JsonValue::object();
#if defined(__VERSION__)
    tc.set("compiler", JsonValue::str(__VERSION__));
#else
    tc.set("compiler", JsonValue::str("unknown"));
#endif
#if defined(__AVX512F__)
    tc.set("isa", JsonValue::str("avx512f"));
    tc.set("vector_bytes", JsonValue::number(64));
#elif defined(__AVX2__)
    tc.set("isa", JsonValue::str("avx2"));
    tc.set("vector_bytes", JsonValue::number(32));
#elif defined(__AVX__)
    tc.set("isa", JsonValue::str("avx"));
    tc.set("vector_bytes", JsonValue::number(32));
#elif defined(__SSE2__) || defined(__x86_64__)
    tc.set("isa", JsonValue::str("sse2"));
    tc.set("vector_bytes", JsonValue::number(16));
#elif defined(__ARM_NEON)
    tc.set("isa", JsonValue::str("neon"));
    tc.set("vector_bytes", JsonValue::number(16));
#else
    tc.set("isa", JsonValue::str("scalar"));
    tc.set("vector_bytes", JsonValue::number(8));
#endif
#if defined(EP_MARCH)
    tc.set("march", JsonValue::str(EP_MARCH));
#else
    tc.set("march", JsonValue::str("default"));
#endif
    root.set("toolchain", std::move(tc));
  }
  root.set("cells", JsonValue::number(static_cast<double>(nVars)));
  root.set("grid", JsonValue::number(static_cast<double>(dim)));
  {
    JsonValue arr = JsonValue::array();
    for (const auto& k : kernels) {
      JsonValue row = JsonValue::object();
      row.set("name", JsonValue::str(k.name));
      row.set("threads", JsonValue::number(k.threads));
      row.set("ns_per_op", JsonValue::number(k.nsPerOp));
      row.set("allocs_per_op", JsonValue::number(k.allocsPerOp));
      arr.push(std::move(row));
    }
    root.set("kernels", std::move(arr));
  }
  {
    JsonValue arr = JsonValue::array();
    for (const auto& r : sweepRows) {
      JsonValue row = JsonValue::object();
      row.set("name", JsonValue::str("dct2d_" + std::to_string(r.n)));
      row.set("grid", JsonValue::number(static_cast<double>(r.n)));
      row.set("ns_per_op", JsonValue::number(r.nsPerOp));
      row.set("allocs_per_op", JsonValue::number(r.allocsPerOp));
      arr.push(std::move(row));
    }
    root.set("transform_sweep", std::move(arr));
  }
  {
    JsonValue arr = JsonValue::array();
    for (const auto& e : endToEnd) {
      JsonValue row = JsonValue::object();
      row.set("threads", JsonValue::number(e.threads));
      row.set("mgp_seconds", JsonValue::number(e.mgpSeconds));
      row.set("cgp_seconds", JsonValue::number(e.cgpSeconds));
      row.set("final_hpwl", JsonValue::number(e.finalHpwl));
      row.set("flow_allocs",
              JsonValue::number(static_cast<double>(e.flowAllocs)));
      arr.push(std::move(row));
    }
    root.set("end_to_end", std::move(arr));
  }
  {
    JsonValue b = JsonValue::object();
    b.set("sessions", JsonValue::number(2));
    b.set("total_threads", JsonValue::number(4));
    b.set("sequential_seconds", JsonValue::number(batchSeqSeconds));
    b.set("concurrent_seconds", JsonValue::number(batchConcSeconds));
    b.set("speedup",
          JsonValue::number(batchConcSeconds > 0.0
                                ? batchSeqSeconds / batchConcSeconds
                                : 0.0));
    b.set("bit_identical", JsonValue::boolean(batchIdentical));
    root.set("batch_2x", std::move(b));
  }
  {
    JsonValue s = JsonValue::object();
    s.set("ping_ns", JsonValue::number(servePingNs));
    s.set("seconds_per_job", JsonValue::number(serveSecondsPerJob));
    s.set("ok", JsonValue::boolean(serveOk));
    root.set("serve_roundtrip", std::move(s));
  }
  {
    JsonValue secs = JsonValue::array();
    JsonValue rss = JsonValue::array();
    for (const auto& r : scaleRows) {
      JsonValue srow = JsonValue::object();
      srow.set("cells", JsonValue::number(static_cast<double>(r.cells)));
      srow.set("flat_seconds", JsonValue::number(r.seconds[0]));
      srow.set("multilevel_seconds", JsonValue::number(r.seconds[1]));
      srow.set("multilevel_levels",
               JsonValue::number(static_cast<double>(r.levels[1])));
      secs.push(std::move(srow));
      JsonValue rrow = JsonValue::object();
      rrow.set("cells", JsonValue::number(static_cast<double>(r.cells)));
      rrow.set("flat_peak_bytes",
               JsonValue::number(static_cast<double>(r.peakBytes[0])));
      rrow.set("multilevel_peak_bytes",
               JsonValue::number(static_cast<double>(r.peakBytes[1])));
      rss.push(std::move(rrow));
    }
    root.set("cells_vs_seconds", std::move(secs));
    root.set("cells_vs_peak_rss", std::move(rss));
  }
  {
    // Baselines for the overhead ratio: the unbudgeted 1-thread rows of
    // the same kernels, measured above.
    double densityPlain = 0.0, waPlain = 0.0;
    for (const auto& k : kernels) {
      if (k.threads != 1) continue;
      if (k.name == "density_update") densityPlain = k.nsPerOp;
      if (k.name == "wa_gradient") waPlain = k.nsPerOp;
    }
    JsonValue b = JsonValue::object();
    b.set("density_update_ns", JsonValue::number(densityPlain));
    b.set("density_update_budgeted_ns",
          JsonValue::number(densityBudgeted.nsPerOp));
    b.set("wa_gradient_ns", JsonValue::number(waPlain));
    b.set("wa_gradient_budgeted_ns", JsonValue::number(waBudgeted.nsPerOp));
    b.set("arena_borrow_ns", JsonValue::number(arenaPlainNs));
    b.set("arena_borrow_budgeted_ns", JsonValue::number(arenaBudgetNs));
    b.set("budgeted_allocs_per_op",
          JsonValue::number(densityBudgeted.allocsPerOp +
                            waBudgeted.allocsPerOp));
    b.set("bytes_charged_steady_state",
          JsonValue::number(static_cast<double>(budgetTimedDelta)));
    root.set("budget_overhead", std::move(b));
  }
  // Steady-state contract: every timed kernel must run allocation-free
  // after its warm-up call (the Nesterov inner loop is exactly these
  // kernels plus element-wise vector updates).
  double steadyAllocs = 0.0;
  for (const auto& k : kernels) steadyAllocs += k.allocsPerOp;
  root.set("steady_state_kernel_allocs", JsonValue::number(steadyAllocs));
  root.set("bit_identical", JsonValue::boolean(bitIdentical));
  const Status benchWr =
      io::writeFileDurably("BENCH_hotpaths.json", writeJson(root) + "\n");
  if (!benchWr.ok()) {
    std::fprintf(stderr, "cannot write BENCH_hotpaths.json: %s\n",
                 benchWr.toString().c_str());
    return 1;
  }
  std::printf("wrote BENCH_hotpaths.json (bit_identical=%s, batch=%s, "
              "serve=%s)\n",
              bitIdentical ? "true" : "false",
              batchIdentical ? "true" : "false", serveOk ? "true" : "false");
  return bitIdentical && batchIdentical && serveOk ? 0 : 1;
}
