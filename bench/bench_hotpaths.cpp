// Hot-path scaling benchmark: per-kernel ns/op and end-to-end mGP/cGP wall
// time at 1, 2 and 4 worker threads. Emits BENCH_hotpaths.json in the CWD.
//
//   bench_hotpaths [--smoke]
//
// --smoke shrinks the instance and runs each kernel once (the perf-smoke
// ctest entry uses it as a does-it-run gate, not a measurement).
//
// Reading the output (docs/PERFORMANCE.md has the full guide):
//  * "hw_concurrency" is the machine's core count. Speedups only manifest
//    when it exceeds the thread count — on a 1-core container every
//    configuration runs the same work sequentially, so ns/op is flat there
//    by construction, not by defect.
//  * "kernels": per-kernel mean ns per call at each thread count.
//  * "end_to_end": mGP/cGP stage seconds per thread count on the same
//    instance, plus the final HPWL bits so identical results are checkable.
//  * "bit_identical": true iff every thread count produced bit-identical
//    final HPWL — the determinism contract, asserted here on real runs.
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include "density/electro.h"
#include "eplace/flow.h"
#include "eval/metrics.h"
#include "gen/generator.h"
#include "qp/initial_place.h"
#include "util/parallel.h"
#include "util/timer.h"
#include "wirelength/wl.h"

namespace {

using namespace ep;

struct KernelRow {
  std::string name;
  int threads;
  double nsPerOp;
};

struct EndToEndRow {
  int threads;
  double mgpSeconds;
  double cgpSeconds;
  double finalHpwl;
};

double timeNs(int reps, const auto& fn) {
  Timer t;
  for (int r = 0; r < reps; ++r) fn();
  return t.seconds() * 1e9 / static_cast<double>(reps);
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  const int kernelReps = smoke ? 1 : 20;
  const std::size_t cells = smoke ? 400 : 4000;
  const int threadCounts[] = {1, 2, 4};

  // --- per-kernel timings on a fixed mid-GP-like state ----------------------
  GenSpec spec;
  spec.name = "hotpaths";
  spec.numCells = cells;
  spec.seed = 42;
  PlacementDB db = generateCircuit(spec);
  quadraticInitialPlace(db);

  const auto movables = db.movable();
  const std::size_t nVars = movables.size();
  std::vector<std::int32_t> objToVar(db.objects.size(), -1);
  std::vector<double> x(nVars), y(nVars), w(nVars), h(nVars);
  for (std::size_t v = 0; v < nVars; ++v) {
    const auto obj = static_cast<std::size_t>(movables[v]);
    objToVar[obj] = static_cast<std::int32_t>(v);
    const Point c = db.objects[obj].center();
    x[v] = c.x;
    y[v] = c.y;
    w[v] = db.objects[obj].w;
    h[v] = db.objects[obj].h;
  }
  const ChargeView charges{x, y, w, h};
  const std::size_t dim = BinGrid::chooseResolution(nVars);
  ElectroDensity density(db.region, dim, dim, db.targetDensity);
  density.stampFixed(db);
  WlEvaluator wlEval(db, objToVar, nVars);
  const VarView view{&db, objToVar, x, y};
  const double gamma = waGammaSchedule(db.region.width() /
                                           static_cast<double>(dim), 0.5);
  std::vector<double> gx(nVars), gy(nVars);

  std::vector<KernelRow> kernels;
  for (const int nt : threadCounts) {
    ThreadPool pool(nt);
    ThreadPool* p = &pool;
    kernels.push_back({"density_update", nt, timeNs(kernelReps, [&] {
                         density.update(charges, p);
                       })});
    kernels.push_back({"density_gradient", nt, timeNs(kernelReps, [&] {
                         density.gradient(charges, gx, gy, p);
                       })});
    kernels.push_back({"wa_gradient", nt, timeNs(kernelReps, [&] {
                         wlEval.waGrad(view, gamma, gamma, gx, gy, p);
                       })});
    kernels.push_back({"hpwl", nt, timeNs(kernelReps, [&] {
                         wlEval.hpwl(view, p);
                       })});
    std::printf("threads=%d done (%zu cells, grid %zu^2)\n", nt, nVars, dim);
  }

  // --- end-to-end mGP + cGP on a mixed-size instance ------------------------
  GenSpec flowSpec;
  flowSpec.name = "hotpaths_flow";
  flowSpec.numCells = smoke ? 200 : 1500;
  flowSpec.numMovableMacros = 4;
  flowSpec.seed = 43;
  std::vector<EndToEndRow> endToEnd;
  bool bitIdentical = true;
  for (const int nt : threadCounts) {
    ThreadPool::setGlobalThreads(nt);
    PlacementDB run = generateCircuit(flowSpec);
    FlowConfig cfg;
    cfg.runDetail = false;
    if (smoke) cfg.gp.maxIterations = 1;  // does-it-run gate only
    if (smoke) cfg.gp.minIterations = 0;
    const FlowResult res = runEplaceFlow(run, cfg);
    endToEnd.push_back({nt, res.mgp.seconds, res.cgp.seconds, res.finalHpwl});
    if (std::bit_cast<std::uint64_t>(res.finalHpwl) !=
        std::bit_cast<std::uint64_t>(endToEnd.front().finalHpwl)) {
      bitIdentical = false;
    }
    std::printf("end-to-end threads=%d: mGP %.2fs, cGP %.2fs, HPWL %.6g\n",
                nt, res.mgp.seconds, res.cgp.seconds, res.finalHpwl);
  }
  ThreadPool::setGlobalThreads(0);

  // --- emit JSON ------------------------------------------------------------
  FILE* f = std::fopen("BENCH_hotpaths.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_hotpaths.json\n");
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(f, "  \"hw_concurrency\": %d,\n",
               ThreadPool::globalThreads());
  std::fprintf(f, "  \"cells\": %zu,\n", nVars);
  std::fprintf(f, "  \"grid\": %zu,\n", dim);
  std::fprintf(f, "  \"kernels\": [\n");
  for (std::size_t i = 0; i < kernels.size(); ++i) {
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"threads\": %d, "
                 "\"ns_per_op\": %.1f}%s\n",
                 kernels[i].name.c_str(), kernels[i].threads,
                 kernels[i].nsPerOp, i + 1 < kernels.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"end_to_end\": [\n");
  for (std::size_t i = 0; i < endToEnd.size(); ++i) {
    std::fprintf(f,
                 "    {\"threads\": %d, \"mgp_seconds\": %.4f, "
                 "\"cgp_seconds\": %.4f, \"final_hpwl\": %.17g}%s\n",
                 endToEnd[i].threads, endToEnd[i].mgpSeconds,
                 endToEnd[i].cgpSeconds, endToEnd[i].finalHpwl,
                 i + 1 < endToEnd.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"bit_identical\": %s\n", bitIdentical ? "true" : "false");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote BENCH_hotpaths.json (bit_identical=%s)\n",
              bitIdentical ? "true" : "false");
  return bitIdentical ? 0 : 1;
}
