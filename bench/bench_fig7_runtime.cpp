// Fig. 7 reproduction: runtime breakdown of the ePlace flow averaged over
// the MMS-like suite — per-stage shares (mGP / mLG / cGP / cDP / mIP) and
// the split inside mGP (density gradient / wirelength gradient / other).
//
// Paper expectation (Fig. 7): mGP dominates the flow runtime; inside mGP
// the density gradient is the largest share (57%), wirelength gradient
// 29%, everything else (Lipschitz prediction, parameter updates) 14%.
#include "common.h"

int main(int argc, char** argv) {
  using namespace ep;
  using namespace ep::bench;
  auto suite = mmsSuite();
  if (fastMode(argc, argv)) suite.resize(4);

  double stage[5] = {};  // mIP, mGP, mLG, cGP, cDP
  double inner[3] = {};  // density, wirelength, other
  for (const auto& spec : suite) {
    PlacementDB db = generateCircuit(spec);
    const FlowResult res = runEplaceFlow(db);
    stage[0] += res.stageSeconds.get("mIP");
    stage[1] += res.stageSeconds.get("mGP");
    stage[2] += res.stageSeconds.get("mLG");
    stage[3] += res.stageSeconds.get("cGP");
    stage[4] += res.stageSeconds.get("cDP");
    inner[0] += res.mgpInner.get("density");
    inner[1] += res.mgpInner.get("wirelength");
    inner[2] += res.mgpInner.get("other");
  }

  const double total = stage[0] + stage[1] + stage[2] + stage[3] + stage[4];
  const double mgpTotal = inner[0] + inner[1] + inner[2];
  std::printf("=== Fig. 7: runtime breakdown, mean over MMS-like suite ===\n");
  const char* names[5] = {"mIP", "mGP", "mLG", "cGP", "cDP"};
  for (int i = 0; i < 5; ++i) {
    std::printf("%-4s %6.1f%%  (%.2fs total)\n", names[i],
                100.0 * stage[i] / total, stage[i]);
  }
  std::printf("inside mGP: density %.0f%%, wirelength %.0f%%, other %.0f%%\n",
              100.0 * inner[0] / mgpTotal, 100.0 * inner[1] / mgpTotal,
              100.0 * inner[2] / mgpTotal);

  const bool shape =
      stage[1] >= stage[0] && stage[1] >= stage[2] && stage[1] >= stage[4] &&
      inner[0] >= inner[1];
  std::printf("shape check (mGP dominant, density gradient the largest mGP "
              "share): %s\n", shape ? "PASS" : "FAIL");
  std::printf("paper Fig. 7: mGP is the longest stage; density 57%% / "
              "wirelength 29%% / other 14%% inside mGP.\n");
  return shape ? 0 : 1;
}
