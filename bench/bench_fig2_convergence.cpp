// Fig. 2 reproduction: total HPWL and object overlap (OVLP) per iteration
// across the flow stages (mIP / mGP / mLG / cGP / cDP) on the MMS
// ADAPTEC1-like circuit. Emits fig2_trace.csv next to the binary's CWD and
// prints the stage-boundary values.
//
// Paper expectation (Fig. 2): mIP ends with low HPWL / huge overlap; mGP
// trades HPWL up while overlap collapses (stops at tau <= 10%); mLG bumps
// HPWL slightly; cGP first dips HPWL (lambda rewound) then reduces the
// re-introduced overlap; cDP removes the remaining overlap entirely.
#include "common.h"
#include "util/csv.h"
#include "util/context.h"

int main() {
  using namespace ep;
  using namespace ep::bench;
  const GenSpec spec = suiteSpec("mms_adaptec1s");
  PlacementDB db = generateCircuit(spec);
  RuntimeContext ctx;

  // The threads column is provenance only: traces are bit-identical for any
  // thread count (docs/PERFORMANCE.md).
  CsvWriter csv("fig2_trace.csv",
                {"stage", "iter", "hpwl", "overflow", "overlap", "threads"});
  if (!csv.ok()) {
    std::fprintf(stderr,
                 "fig2_trace.csv is not writable; trace rows will be "
                 "dropped (bench continues)\n");
  }
  int global = 0;
  auto overlapNow = [&] { return gridOverlapArea(db, false, 256, 256); };

  FlowConfig cfg;
  struct Boundary {
    std::string label;
    double hpwl, overlap;
  };
  std::vector<Boundary> bounds;
  cfg.gpTrace = [&](const std::string& stage, const GpIterTrace& t) {
    // Overlap is sampled sparsely (every 10 iters) — it needs a fine grid.
    if (t.iter % 10 == 0) {
      csv.row(std::vector<std::string>{
          stage, std::to_string(global), std::to_string(t.hpwl),
          std::to_string(t.overflow), std::to_string(overlapNow()),
          std::to_string(ctx.pool().threads())});
    }
    ++global;
  };

  const FlowResult res = runEplaceFlow(db, cfg, &ctx);

  std::printf("=== Fig. 2: HPWL / overlap per stage (mms_adaptec1s) ===\n");
  std::printf("%-6s %12s %12s %10s\n", "stage", "HPWL", "OVLP", "overflow");
  auto row = [&](const char* name, const StageMetrics& m, double ovl) {
    if (!m.ran) return;
    std::printf("%-6s %12.4g %12.4g %10.3f\n", name, m.hpwl, ovl, m.overflow);
  };
  // Recompute stage overlaps from recorded HPWL checkpoints: report final.
  row("mIP", res.mip, res.mip.ran ? -1.0 : 0.0);
  row("mGP", res.mgp, -1.0);
  row("mLG", res.mlg, -1.0);
  row("cGP", res.cgp, -1.0);
  row("cDP", res.cdp, overlapNow());
  std::printf("(full per-iteration series in fig2_trace.csv; OVLP for "
              "intermediate stages recorded there)\n");

  const bool shape =
      res.mip.hpwl < res.mgp.hpwl &&            // mIP low-WL / high-overlap
      res.mgp.overflow <= 0.11 &&               // mGP hits the tau target
      res.cdp.ran && checkLegality(db).legal;   // flow ends legal
  std::printf("shape check (mIP<mGP HPWL, mGP tau<=0.1, legal end): %s\n",
              shape ? "PASS" : "FAIL");
  std::printf(
      "paper Fig. 2: same qualitative curve — wirelength rises during "
      "spreading, overlap monotonically collapses, cGP dips then recovers.\n");
  return shape ? 0 : 1;
}
