// Fig. 6 reproduction: distribution of standard cells and fillers before
// and after cGP (macros fixed after mLG) on MMS ADAPTEC1-like. Writes
// fig6_before.ppm / fig6_after.ppm with the W / O annotations.
//
// Paper expectation (Fig. 6): cGP slightly *reduces* wirelength
// (64.36e6 -> 63.04e6) while overlap stays controlled — the filler-only
// prelude relocates fillers out of the macros so cells need not pay
// wirelength for density.
#include "common.h"
#include "eval/plot.h"
#include "qp/initial_place.h"

int main() {
  using namespace ep;
  using namespace ep::bench;
  const GenSpec spec = suiteSpec("mms_adaptec1s");
  PlacementDB db = generateCircuit(spec);
  quadraticInitialPlace(db);

  FillerSet fillers;
  GpResult mgpRes;
  {
    GlobalPlacer gp(db, db.movable(), {});
    gp.makeFillersFromDb();
    mgpRes = gp.run();
    fillers = gp.fillers();
  }
  legalizeMacros(db);
  for (auto& o : db.objects) {
    if (o.kind == ObjKind::kMacro) o.fixed = true;
  }
  db.finalize();

  GpConfig cfg;
  const int m = std::max(1, mgpRes.iterations / 10);
  cfg.initialLambda =
      mgpRes.finalLambda * std::pow(cfg.lambdaMultMax, -static_cast<double>(m));
  GlobalPlacer cgp(db, db.movable(), cfg);
  cgp.setFillers(fillers);
  cgp.runFillerOnly(20);

  const double wBefore = hpwl(db);
  const double oBefore = gridOverlapArea(db, false, 256, 256);
  auto plotWithFillers = [&](const char* path) {
    const auto& f = cgp.fillers();
    plotLayout(db, path, {}, f.cx, f.cy, std::vector<double>(f.size(), f.w),
               std::vector<double>(f.size(), f.h));
  };
  plotWithFillers("fig6_before.ppm");

  const GpResult res = cgp.run();
  const double wAfter = hpwl(db);
  const double oAfter = gridOverlapArea(db, false, 256, 256);
  plotWithFillers("fig6_after.ppm");

  std::printf("=== Fig. 6: cGP before/after (mms_adaptec1s) ===\n");
  std::printf("%-8s %12s %12s\n", "", "W(HPWL)", "O(overlap)");
  std::printf("%-8s %12.4g %12.4g\n", "before", wBefore, oBefore);
  std::printf("%-8s %12.4g %12.4g  (%d iterations)\n", "after", wAfter,
              oAfter, res.iterations);

  const bool shape = wAfter < 1.05 * wBefore && res.finalOverflow <= 0.12;
  std::printf("shape check (W roughly kept or reduced, tau back to <=0.1): %s\n",
              shape ? "PASS" : "FAIL");
  std::printf("paper Fig. 6: W 64.36e6 -> 63.04e6 in 51 iterations with "
              "overlap essentially unchanged.\n");
  return shape ? 0 : 1;
}
