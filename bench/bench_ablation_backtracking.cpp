// Sec. V-C ablation: disable the steplength backtracking (Alg. 2) and rerun
// the flow on an MMS subset.
//
// Paper expectation: without backtracking, ePlace fails outright on MMS
// BIGBLUE4 and loses 43.1% wirelength on average of the remaining circuits;
// average cost with backtracking is ~1.04 extra gradient evaluations per
// iteration (<4% mGP runtime).
#include "common.h"

int main(int argc, char** argv) {
  using namespace ep;
  using namespace ep::bench;
  auto suite = mmsSuite();
  suite.resize(fastMode(argc, argv) ? 2 : 6);

  std::printf("=== Ablation: steplength backtracking (Sec. V-C) ===\n");
  std::printf("%-22s %12s %12s %10s %10s\n", "circuit", "with-BkTrk",
              "no-BkTrk", "delta", "converged");

  std::vector<double> with, without;
  int failures = 0;
  double btPerIter = 0.0;
  for (const auto& spec : suite) {
    PlacementDB a = generateCircuit(spec);
    FlowConfig on;
    const FlowResult ra = runEplaceFlow(a, on);
    btPerIter += static_cast<double>(ra.mgpResult.backtracks) /
                 std::max(1, ra.mgpResult.iterations);

    PlacementDB b = generateCircuit(spec);
    FlowConfig off;
    off.gp.enableBacktracking = false;
    const FlowResult rb = runEplaceFlow(b, off);
    if (!rb.mgpResult.converged) ++failures;

    with.push_back(ra.finalScaledHpwl);
    without.push_back(rb.finalScaledHpwl);
    std::printf("%-22s %12.4g %12.4g %+9.1f%% %10s\n", spec.name.c_str(),
                ra.finalScaledHpwl, rb.finalScaledHpwl,
                (rb.finalScaledHpwl / ra.finalScaledHpwl - 1.0) * 100.0,
                rb.mgpResult.converged ? "yes" : "NO");
  }

  const double delta = (meanRatio(without, with) - 1.0) * 100.0;
  btPerIter /= static_cast<double>(suite.size());
  std::printf("\nno-backtracking wirelength delta: %+.2f%% (geomean), "
              "failures %d/%zu\n", delta, failures, suite.size());
  std::printf("backtracks per iteration with BkTrk enabled: %.3f\n",
              btPerIter);
  std::printf("paper: +43.1%% average, 1 outright failure, 1.037 "
              "backtracks/iteration.\n");
  const bool shape = delta > 0.0 || failures > 0;
  std::printf("shape check (disabling hurts): %s\n", shape ? "PASS" : "FAIL");
  return shape ? 0 : 1;
}
