// Extension ablation: Nesterov momentum vs plain gradient descent with the
// same Lipschitz steplength prediction. The paper chooses Nesterov's method
// for its O(1/k^2) rate (Sec. V-B); this bench quantifies what the momentum
// term is worth inside the real placer — iterations to reach the overflow
// target and final wirelength.
#include "common.h"

int main(int argc, char** argv) {
  using namespace ep;
  using namespace ep::bench;
  auto suite = ispd2005Suite();
  suite.resize(fastMode(argc, argv) ? 2 : 4);

  std::printf("=== Ablation: Nesterov momentum vs gradient descent ===\n");
  std::printf("%-22s %12s %12s %12s %12s\n", "circuit", "nesterov-it",
              "gd-it", "nesterov-WL", "gd-WL");

  std::vector<double> nIt, gIt, nWl, gWl;
  for (const auto& spec : suite) {
    PlacementDB a = generateCircuit(spec);
    const FlowResult ra = runEplaceFlow(a);

    PlacementDB b = generateCircuit(spec);
    FlowConfig off;
    off.gp.enableMomentum = false;
    const FlowResult rb = runEplaceFlow(b, off);

    nIt.push_back(ra.mgpResult.iterations);
    gIt.push_back(rb.mgpResult.iterations);
    nWl.push_back(ra.finalScaledHpwl);
    gWl.push_back(rb.finalScaledHpwl);
    std::printf("%-22s %12d %12d %12.4g %12.4g%s\n", spec.name.c_str(),
                ra.mgpResult.iterations, rb.mgpResult.iterations,
                ra.finalScaledHpwl, rb.finalScaledHpwl,
                rb.mgpResult.converged ? "" : "  (gd did not converge)");
  }

  const double itRatio = meanRatio(gIt, nIt);
  const double wlDelta = (meanRatio(gWl, nWl) - 1.0) * 100.0;
  std::printf("\ngradient descent needs %.2fx the iterations; wirelength "
              "delta %+.2f%%\n", itRatio, wlDelta);
  const bool shape = itRatio > 1.2 || wlDelta > 0.5;
  std::printf("shape check (momentum accelerates and/or improves): %s\n",
              shape ? "PASS" : "FAIL");
  return shape ? 0 : 1;
}
