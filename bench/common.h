// Shared harness for the experiment benches: runs each placer through the
// same finishing pipeline (macro legalization where applicable, cell
// legalization, detail placement) so table rows compare global-placement
// quality the way the paper's evaluation scripts do.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "baseline/bell.h"
#include "baseline/mincut.h"
#include "baseline/quadratic.h"
#include "eplace/flow.h"
#include "eval/metrics.h"
#include "gen/generator.h"
#include "gen/suites.h"
#include "legal/detail.h"
#include "legal/legalize.h"
#include "legal/mlg.h"
#include "qp/initial_place.h"
#include "util/timer.h"
#include "wirelength/wl.h"

namespace ep::bench {

struct RunMetrics {
  double hpwl = 0.0;
  double scaledHpwl = 0.0;
  double overflow = 0.0;
  double seconds = 0.0;
  bool legal = false;
};

/// Finish a baseline global placement: legalize macros (if any movable),
/// freeze them, then legalize + detail-place the cells.
inline void finishBaseline(PlacementDB& db) {
  if (db.numMovableMacros() > 0) {
    legalizeMacros(db);
    for (auto& o : db.objects) {
      if (o.kind == ObjKind::kMacro) o.fixed = true;
    }
    db.finalize();
  }
  legalizeCells(db);
  detailPlace(db);
}

inline RunMetrics measure(const PlacementDB& db, double seconds) {
  RunMetrics m;
  m.hpwl = hpwl(db);
  m.scaledHpwl = scaledHpwl(db);
  m.overflow = densityOverflow(db).overflow;
  m.seconds = seconds;
  m.legal = checkLegality(db).legal;
  return m;
}

inline RunMetrics runEplace(const GenSpec& spec) {
  PlacementDB db = generateCircuit(spec);
  Timer t;
  runEplaceFlow(db);
  return measure(db, t.seconds());
}

inline RunMetrics runMinCut(const GenSpec& spec) {
  PlacementDB db = generateCircuit(spec);
  Timer t;
  minCutPlace(db);
  finishBaseline(db);
  return measure(db, t.seconds());
}

inline RunMetrics runQuadratic(const GenSpec& spec) {
  PlacementDB db = generateCircuit(spec);
  Timer t;
  quadraticPlace(db);
  finishBaseline(db);
  return measure(db, t.seconds());
}

inline RunMetrics runBell(const GenSpec& spec) {
  PlacementDB db = generateCircuit(spec);
  Timer t;
  quadraticInitialPlace(db);  // nonlinear placers also start from a QP seed
  bellPlace(db);
  finishBaseline(db);
  return measure(db, t.seconds());
}

/// Geometric-mean of per-circuit ratios vs the last column (ePlace).
inline double meanRatio(const std::vector<double>& values,
                        const std::vector<double>& reference) {
  double logSum = 0.0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (values[i] > 0.0 && reference[i] > 0.0) {
      logSum += std::log(values[i] / reference[i]);
      ++n;
    }
  }
  return n ? std::exp(logSum / static_cast<double>(n)) : 0.0;
}

/// True when the binary was invoked with --fast (subset of circuits for a
/// quick smoke run; default reproduces the full table).
inline bool fastMode(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--fast") return true;
  }
  return false;
}

}  // namespace ep::bench
