// Sec. VI-B ablation: skip the 20-iteration filler-only placement that
// relocates fillers around the legalized macros before cGP.
//
// Paper expectation: disabling it costs 6.53% wirelength on average of the
// MMS suite — without it, macro-to-filler overlap forces standard cells to
// pay wirelength for density during cGP.
#include "common.h"

int main(int argc, char** argv) {
  using namespace ep;
  using namespace ep::bench;
  auto suite = mmsSuite();
  suite.resize(fastMode(argc, argv) ? 2 : 8);

  std::printf("=== Ablation: filler-only placement before cGP (Sec. VI-B) ===\n");
  std::printf("%-22s %12s %12s %10s\n", "circuit", "with", "without", "delta");

  std::vector<double> with, without;
  for (const auto& spec : suite) {
    PlacementDB a = generateCircuit(spec);
    const FlowResult ra = runEplaceFlow(a);

    PlacementDB b = generateCircuit(spec);
    FlowConfig off;
    off.enableFillerOnly = false;
    const FlowResult rb = runEplaceFlow(b, off);

    with.push_back(ra.finalScaledHpwl);
    without.push_back(rb.finalScaledHpwl);
    std::printf("%-22s %12.4g %12.4g %+9.2f%%\n", spec.name.c_str(),
                ra.finalScaledHpwl, rb.finalScaledHpwl,
                (rb.finalScaledHpwl / ra.finalScaledHpwl - 1.0) * 100.0);
  }

  const double delta = (meanRatio(without, with) - 1.0) * 100.0;
  std::printf("\nno-filler-only wirelength delta: %+.2f%% (geomean)\n", delta);
  std::printf("paper: +6.53%% on average of all MMS benchmarks.\n");
  const bool shape = delta > -1.0;  // must not help; expected to hurt
  std::printf("shape check (skipping does not help): %s\n",
              shape ? "PASS" : "FAIL");
  return shape ? 0 : 1;
}
