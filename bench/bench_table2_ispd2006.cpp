// Table II reproduction: scaled HPWL (sHPWL = HPWL * (1 + 0.01 * tau_avg%)),
// runtime and density overflow on the ISPD-2006-like suite (benchmark-
// specific rho_t < 1).
//
// Paper expectation (Table II): ePlace best sHPWL on 7/8 and the smallest
// density overflow of all placers except Capo (which pays +43.7%
// wirelength for it); quadratic ~+5..16%, prior nonlinear ~+8..18%.
#include "common.h"

int main(int argc, char** argv) {
  using namespace ep;
  using namespace ep::bench;
  auto suite = ispd2006Suite();
  if (fastMode(argc, argv)) suite.resize(3);

  std::printf(
      "=== Table II: ISPD-2006-like suite (scaled HPWL x1e3, rho_t per "
      "circuit) ===\n");
  std::printf("%-22s %5s %10s %10s %10s %10s\n", "circuit", "rho_t", "MinCut",
              "Quad", "Bell", "ePlace");

  std::vector<double> shp[4], rt[4], ovf[4];
  for (const auto& spec : suite) {
    const RunMetrics m[4] = {runMinCut(spec), runQuadratic(spec),
                             runBell(spec), runEplace(spec)};
    for (int p = 0; p < 4; ++p) {
      shp[p].push_back(m[p].scaledHpwl);
      rt[p].push_back(m[p].seconds);
      ovf[p].push_back(std::max(m[p].overflow, 1e-4));
    }
    std::printf("%-22s %5.2f %10.2f %10.2f %10.2f %10.2f\n", spec.name.c_str(),
                spec.targetDensity, m[0].scaledHpwl / 1e3,
                m[1].scaledHpwl / 1e3, m[2].scaledHpwl / 1e3,
                m[3].scaledHpwl / 1e3);
  }

  std::printf("\n%-22s %15.2f%% %9.2f%% %9.2f%% %9.2f%%\n",
              "avg sHPWL vs ePlace",
              (meanRatio(shp[0], shp[3]) - 1.0) * 100.0,
              (meanRatio(shp[1], shp[3]) - 1.0) * 100.0,
              (meanRatio(shp[2], shp[3]) - 1.0) * 100.0, 0.0);
  std::printf("%-22s %15.2fx %9.2fx %9.2fx %9.2fx\n", "avg runtime vs ePlace",
              meanRatio(rt[0], rt[3]), meanRatio(rt[1], rt[3]),
              meanRatio(rt[2], rt[3]), 1.0);
  std::printf("%-22s %15.2fx %9.2fx %9.2fx %9.2fx\n", "avg overflow vs ePlace",
              meanRatio(ovf[0], ovf[3]), meanRatio(ovf[1], ovf[3]),
              meanRatio(ovf[2], ovf[3]), 1.0);
  std::printf(
      "\npaper Table II: quadratic +4.6..16%%, prior nonlinear +7.7..18%%, "
      "min-cut +43.7%%; ePlace best sHPWL on 7/8 and lowest overflow "
      "(others 4x-14x). NOTE: overflow ratios here are ~1 by construction -- all placers share this repo's legalization finish, so final overflow reflects the shared legalizer, not the GP engines (see EXPERIMENTS.md).\n");
  return 0;
}
