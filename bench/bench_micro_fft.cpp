// Microbenchmarks for the spectral substrate: complex FFT, the DCT family,
// and the full Poisson solve (4 2-D transforms) at the grid sizes mGP uses.
// Validates the O(n log n) density-cost claim of Sec. IV empirically.
#include <benchmark/benchmark.h>

#include "fft/dct.h"
#include "fft/fft.h"
#include "fft/poisson.h"
#include "util/rng.h"

namespace {

void BM_ComplexFft(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  ep::Fft fft(n);
  ep::Rng rng(1);
  std::vector<ep::Complex> data(n);
  for (auto& c : data) c = {rng.uniform(), rng.uniform()};
  for (auto _ : state) {
    fft.forward(data);
    benchmark::DoNotOptimize(data.data());
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ComplexFft)->RangeMultiplier(2)->Range(64, 2048)->Complexity();

void BM_Dct2(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  ep::Dct dct(n);
  ep::Rng rng(2);
  std::vector<double> data(n);
  for (auto& x : data) x = rng.uniform();
  for (auto _ : state) {
    dct.dct2(data);
    benchmark::DoNotOptimize(data.data());
  }
}
BENCHMARK(BM_Dct2)->RangeMultiplier(2)->Range(64, 2048);

void BM_SineSynthesis(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  ep::Dct dct(n);
  ep::Rng rng(3);
  std::vector<double> data(n);
  for (auto& x : data) x = rng.uniform();
  for (auto _ : state) {
    dct.sineSynthesis(data);
    benchmark::DoNotOptimize(data.data());
  }
}
BENCHMARK(BM_SineSynthesis)->RangeMultiplier(2)->Range(64, 2048);

void BM_PoissonSolve(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  ep::PoissonSolver solver(m, m, 1.0, 1.0);
  ep::Rng rng(4);
  std::vector<double> rho(m * m);
  for (auto& x : rho) x = rng.uniform(-1.0, 1.0);
  for (auto _ : state) {
    solver.solve(rho);
    benchmark::DoNotOptimize(solver.psi().data());
  }
  state.SetComplexityN(static_cast<std::int64_t>(m * m));
}
BENCHMARK(BM_PoissonSolve)->RangeMultiplier(2)->Range(32, 512)->Complexity();

}  // namespace

BENCHMARK_MAIN();
