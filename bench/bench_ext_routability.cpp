// Extension experiment: routability-driven refinement (the paper's stated
// future work, Sec. VIII). Measures the RUDY hotspot score and wirelength
// before/after inflation-driven re-placement on high-locality circuits
// (tight clusters create the congestion knots that routers choke on).
#include "common.h"
#include "route/routability.h"

int main(int argc, char** argv) {
  using namespace ep;
  using namespace ep::bench;
  const int count = fastMode(argc, argv) ? 1 : 3;

  std::printf("=== Extension: routability-driven refinement (RUDY) ===\n");
  std::printf("%-16s %12s %12s %12s %12s %8s\n", "circuit", "hotspot-pre",
              "hotspot-post", "HPWL-pre", "HPWL-post", "legal");

  bool shape = true;
  for (int i = 0; i < count; ++i) {
    GenSpec spec;
    spec.name = "route" + std::to_string(i);
    spec.numCells = 1200 + 400 * i;
    spec.locality = 0.9;
    spec.seed = 100 + static_cast<std::uint64_t>(i);
    PlacementDB db = generateCircuit(spec);
    runEplaceFlow(db);
    const RoutabilityResult res = routabilityDrivenRefine(db);
    std::printf("%-16s %12.4g %12.4g %12.4g %12.4g %8s\n", spec.name.c_str(),
                res.hotspotBefore, res.hotspotAfter, res.hpwlBefore,
                res.hpwlAfter, res.legal ? "yes" : "no");
    shape = shape && res.legal && res.hotspotAfter <= res.hotspotBefore * 1.02;
  }

  std::printf("\nshape check (hotspot relieved or unchanged, layout stays "
              "legal): %s\n", shape ? "PASS" : "FAIL");
  std::printf("context: congestion-for-wirelength trading is the expected "
              "behaviour of routability modes (cf. RePlAce's extension of "
              "this algorithm).\n");
  return shape ? 0 : 1;
}
