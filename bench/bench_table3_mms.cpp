// Table III reproduction: (scaled) HPWL on the MMS-like mixed-size suite —
// same netlists as Tables I/II but macros movable and fixed IO blocks.
// ePlace runs its full flow (mIP -> mGP -> mLG -> cGP -> cDP); baselines
// place macros and cells together in their global stage, then share the
// same mLG + legalization finish.
//
// Paper expectation (Table III): ePlace best on 11/16 circuits, on average
// 7.1% ahead of the best competitor (NTUplace3-unified) at ~equal runtime,
// and the lowest density overflow (others 1.7x-9x).
#include "common.h"

int main(int argc, char** argv) {
  using namespace ep;
  using namespace ep::bench;
  auto suite = mmsSuite();
  if (fastMode(argc, argv)) suite.resize(3);

  std::printf("=== Table III: MMS-like mixed-size suite (scaled HPWL x1e3) ===\n");
  std::printf("%-22s %5s %10s %10s %10s %10s   ePlace-best?\n", "circuit",
              "#mac", "MinCut", "Quad", "Bell", "ePlace");

  std::vector<double> shp[4], rt[4], ovf[4];
  int eplaceBest = 0;
  for (const auto& spec : suite) {
    const RunMetrics m[4] = {runMinCut(spec), runQuadratic(spec),
                             runBell(spec), runEplace(spec)};
    for (int p = 0; p < 4; ++p) {
      shp[p].push_back(m[p].scaledHpwl);
      rt[p].push_back(m[p].seconds);
      ovf[p].push_back(std::max(m[p].overflow, 1e-4));
    }
    const bool best = m[3].scaledHpwl <= m[0].scaledHpwl &&
                      m[3].scaledHpwl <= m[1].scaledHpwl &&
                      m[3].scaledHpwl <= m[2].scaledHpwl;
    eplaceBest += best ? 1 : 0;
    std::printf("%-22s %5zu %10.2f %10.2f %10.2f %10.2f   %s\n",
                spec.name.c_str(), spec.numMovableMacros,
                m[0].scaledHpwl / 1e3, m[1].scaledHpwl / 1e3,
                m[2].scaledHpwl / 1e3, m[3].scaledHpwl / 1e3,
                best ? "yes" : "no");
  }

  std::printf("\nePlace best on %d/%zu circuits\n", eplaceBest, suite.size());
  std::printf("%-22s %15.2f%% %9.2f%% %9.2f%% %9.2f%%\n",
              "avg sHPWL vs ePlace",
              (meanRatio(shp[0], shp[3]) - 1.0) * 100.0,
              (meanRatio(shp[1], shp[3]) - 1.0) * 100.0,
              (meanRatio(shp[2], shp[3]) - 1.0) * 100.0, 0.0);
  std::printf("%-22s %15.2fx %9.2fx %9.2fx %9.2fx\n", "avg runtime vs ePlace",
              meanRatio(rt[0], rt[3]), meanRatio(rt[1], rt[3]),
              meanRatio(rt[2], rt[3]), 1.0);
  std::printf("%-22s %15.2fx %9.2fx %9.2fx %9.2fx\n", "avg overflow vs ePlace",
              meanRatio(ovf[0], ovf[3]), meanRatio(ovf[1], ovf[3]),
              meanRatio(ovf[2], ovf[3]), 1.0);
  std::printf(
      "\npaper Table III: min-cut +64%%, quadratic +11..18%%, prior "
      "nonlinear +7.1..31%%; ePlace best on 11/16, lowest overflow. NOTE: overflow ratios are ~1 here by construction (shared legalization finish; see EXPERIMENTS.md).\n");
  return 0;
}
