// Fig. 5 reproduction: macro distribution before and after mLG on MMS
// ADAPTEC1-like, with the annotated W (wirelength), D (cell area covered by
// macros) and Om (macro overlap) values. Writes fig5_before.ppm /
// fig5_after.ppm.
//
// Paper expectation (Fig. 5): Om -> 0 exactly, D drops to ~0, W rises only
// slightly (63.37e6 -> 64.36e6, ~+1.6%), i.e. legalization via small local
// shifts.
#include "common.h"
#include "eval/plot.h"
#include "qp/initial_place.h"

int main() {
  using namespace ep;
  using namespace ep::bench;
  const GenSpec spec = suiteSpec("mms_adaptec1s");
  PlacementDB db = generateCircuit(spec);
  quadraticInitialPlace(db);
  {
    GlobalPlacer gp(db, db.movable(), {});
    gp.makeFillersFromDb();
    gp.run();
  }

  plotLayout(db, "fig5_before.ppm");
  const MlgResult res = legalizeMacros(db);
  plotLayout(db, "fig5_after.ppm");

  std::printf("=== Fig. 5: mLG before/after (mms_adaptec1s) ===\n");
  std::printf("%-8s %12s %12s %12s\n", "", "W(HPWL)", "D(cover)", "Om");
  std::printf("%-8s %12.4g %12.4g %12.4g\n", "before", res.hpwlBefore,
              res.coverBefore, res.overlapBefore);
  std::printf("%-8s %12.4g %12.4g %12.4g\n", "after", res.hpwlAfter,
              res.coverAfter, res.overlapAfter);
  std::printf("moves attempted %ld, accepted %ld, outer iterations %d\n",
              res.attempted, res.accepted, res.outerIterations);

  const double wIncrease = res.hpwlAfter / std::max(res.hpwlBefore, 1e-12);
  // Paper: the Om = 0 constraint binds; D (an objective term) stays the
  // same order (it even rose slightly in the paper), W rises only a little.
  const bool shape = res.legal && res.overlapAfter <= 1e-9 && wIncrease < 1.25;
  std::printf("shape check (Om=0, small W increase %.1f%%): %s\n",
              (wIncrease - 1.0) * 100.0, shape ? "PASS" : "FAIL");
  std::printf("paper Fig. 5: Om 6.1e5 -> 0, D 12.1e5 -> 14.7e5, W +1.6%%.\n");
  return shape ? 0 : 1;
}
