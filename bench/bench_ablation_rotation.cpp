// Extension experiment: macro rotation/flipping during mLG. The paper
// disallows both ("to follow contest protocols and lithography
// requirements", Sec. III) while noting the framework supports them; the
// comparison against NTUplace3-NR vs NTUplace3 in Table III shows rotation
// is worth ~0.3% there. This bench measures what the annealer gains when
// the moves are enabled in this repo.
#include "common.h"

int main(int argc, char** argv) {
  using namespace ep;
  using namespace ep::bench;
  auto suite = mmsSuite();
  suite.resize(fastMode(argc, argv) ? 2 : 6);

  std::printf("=== Extension: macro rotation/flipping in mLG ===\n");
  std::printf("%-22s %12s %12s %10s\n", "circuit", "no-rotate", "rotate",
              "delta");

  std::vector<double> plain, rotated;
  for (const auto& spec : suite) {
    PlacementDB a = generateCircuit(spec);
    const FlowResult ra = runEplaceFlow(a);

    PlacementDB b = generateCircuit(spec);
    FlowConfig cfg;
    cfg.mlg.allowRotation = true;
    cfg.mlg.allowFlipping = true;
    const FlowResult rb = runEplaceFlow(b, cfg);

    plain.push_back(ra.finalScaledHpwl);
    rotated.push_back(rb.finalScaledHpwl);
    std::printf("%-22s %12.4g %12.4g %+9.2f%%\n", spec.name.c_str(),
                ra.finalScaledHpwl, rb.finalScaledHpwl,
                (rb.finalScaledHpwl / ra.finalScaledHpwl - 1.0) * 100.0);
  }

  const double delta = (meanRatio(rotated, plain) - 1.0) * 100.0;
  std::printf("\nrotation-enabled wirelength delta: %+.2f%% (geomean; "
              "negative = rotation helps)\n", delta);
  std::printf("paper context: NTUplace3 with rotation beats its own NR mode "
              "by ~0.3%% (Table III) — a small effect is expected.\n");
  const bool shape = delta < 2.0;  // must not hurt materially
  std::printf("shape check (rotation does not hurt): %s\n",
              shape ? "PASS" : "FAIL");
  return shape ? 0 : 1;
}
