// Sec. V-D ablation: disable the approximated preconditioner
// (|E_i| + lambda q_i) and rerun the flow on an MMS subset.
//
// Paper expectation: unpreconditioned gradients make macros (much larger
// q_i) bounce between boundaries; ePlace then fails on 9/16 MMS circuits
// and loses 24.6% wirelength on the rest. At this repo's scaled-down macro
// sizes the failure mode is milder but the direction must hold.
#include "common.h"

int main(int argc, char** argv) {
  using namespace ep;
  using namespace ep::bench;
  auto suite = mmsSuite();
  suite.resize(fastMode(argc, argv) ? 2 : 6);

  std::printf("=== Ablation: nonlinear preconditioning (Sec. V-D) ===\n");
  std::printf("%-22s %12s %12s %10s %10s\n", "circuit", "precond",
              "no-precond", "delta", "converged");

  std::vector<double> with, without;
  int failures = 0;
  for (const auto& spec : suite) {
    PlacementDB a = generateCircuit(spec);
    const FlowResult ra = runEplaceFlow(a);

    PlacementDB b = generateCircuit(spec);
    FlowConfig off;
    off.gp.enablePreconditioner = false;
    const FlowResult rb = runEplaceFlow(b, off);
    if (!rb.mgpResult.converged) ++failures;

    with.push_back(ra.finalScaledHpwl);
    without.push_back(rb.finalScaledHpwl);
    std::printf("%-22s %12.4g %12.4g %+9.1f%% %10s\n", spec.name.c_str(),
                ra.finalScaledHpwl, rb.finalScaledHpwl,
                (rb.finalScaledHpwl / ra.finalScaledHpwl - 1.0) * 100.0,
                rb.mgpResult.converged ? "yes" : "NO");
  }

  const double delta = (meanRatio(without, with) - 1.0) * 100.0;
  std::printf("\nno-preconditioner wirelength delta: %+.2f%% (geomean), "
              "failures %d/%zu\n", delta, failures, suite.size());
  std::printf("paper: fails on 9/16 circuits, +24.6%% wirelength on the "
              "remaining seven.\n");
  const bool shape = delta > 0.0 || failures > 0;
  std::printf("shape check (disabling hurts): %s\n", shape ? "PASS" : "FAIL");
  return shape ? 0 : 1;
}
