// Extension ablation: optimizer vs density-model contribution. The paper
// introduces two things at once — the eDensity electrostatic penalty and
// the Nesterov/Lipschitz optimizer. This bench fills in the 2x2 matrix the
// paper's evaluation implies:
//
//            | CG + line search   | Nesterov + Lipschitz
//   bell     | prior art (APlace) | bell cost, new optimizer
//   eDensity | (ePlace w/o Nest.*)| ePlace
//
// eDensity+CG is approximated by ePlace with momentum disabled (*gradient
// descent with Lipschitz steps — the closest cost-identical contrast our
// engine supports); bell rows swap the optimizer under an identical cost
// via BellPlaceConfig::useNesterov.
#include "common.h"

int main(int argc, char** argv) {
  using namespace ep;
  using namespace ep::bench;
  auto suite = ispd2005Suite();
  suite.resize(fastMode(argc, argv) ? 1 : 3);

  std::printf("=== Extension: optimizer x density-model matrix ===\n");
  std::printf("%-22s %12s %12s %12s %12s\n", "circuit", "bell+CG",
              "bell+Nest", "eDens+GD", "ePlace");

  std::vector<double> bc, bn, eg, ep_;
  for (const auto& spec : suite) {
    RunMetrics m[4];
    {
      PlacementDB db = generateCircuit(spec);
      Timer t;
      quadraticInitialPlace(db);
      bellPlace(db);
      finishBaseline(db);
      m[0] = measure(db, t.seconds());
    }
    {
      PlacementDB db = generateCircuit(spec);
      Timer t;
      quadraticInitialPlace(db);
      BellPlaceConfig cfg;
      cfg.useNesterov = true;
      bellPlace(db, cfg);
      finishBaseline(db);
      m[1] = measure(db, t.seconds());
    }
    {
      PlacementDB db = generateCircuit(spec);
      Timer t;
      FlowConfig cfg;
      cfg.gp.enableMomentum = false;
      runEplaceFlow(db, cfg);
      m[2] = measure(db, t.seconds());
    }
    {
      PlacementDB db = generateCircuit(spec);
      Timer t;
      runEplaceFlow(db);
      m[3] = measure(db, t.seconds());
    }
    bc.push_back(m[0].hpwl);
    bn.push_back(m[1].hpwl);
    eg.push_back(m[2].hpwl);
    ep_.push_back(m[3].hpwl);
    std::printf("%-22s %12.4g %12.4g %12.4g %12.4g\n", spec.name.c_str(),
                m[0].hpwl, m[1].hpwl, m[2].hpwl, m[3].hpwl);
  }

  std::printf("\nvs ePlace (geomean): bell+CG %+.1f%%, bell+Nesterov %+.1f%%, "
              "eDensity+GD %+.1f%%\n",
              (meanRatio(bc, ep_) - 1.0) * 100.0,
              (meanRatio(bn, ep_) - 1.0) * 100.0,
              (meanRatio(eg, ep_) - 1.0) * 100.0);
  // The full combination must win the matrix.
  const bool shape = meanRatio(bc, ep_) > 1.0 && meanRatio(bn, ep_) > 0.98 &&
                     meanRatio(eg, ep_) > 0.98;
  std::printf("shape check (full ePlace at or ahead of every variant): %s\n",
              shape ? "PASS" : "FAIL");
  std::printf("paper context: both ingredients are claimed necessary — the "
              "matrix quantifies each at this scale.\n");
  return shape ? 0 : 1;
}
