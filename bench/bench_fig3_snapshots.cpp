// Fig. 3 reproduction: snapshots of mGP progression on MMS ADAPTEC1-like
// (standard cells red, macros black, fillers blue). Writes fig3_iter<k>.ppm
// images and prints the W (wirelength) / O (overlap) values the paper
// annotates under each snapshot.
//
// Paper expectation (Fig. 3): at iter 0 everything is piled near the
// center; by ~iter 80 rough spreading; by the final iteration cells and
// fillers tile the region evenly and macros have (near-)legal positions,
// with W growing moderately while O collapses.
#include "common.h"
#include "eval/plot.h"
#include "qp/initial_place.h"

int main() {
  using namespace ep;
  using namespace ep::bench;
  const GenSpec spec = suiteSpec("mms_adaptec1s");
  PlacementDB db = generateCircuit(spec);
  quadraticInitialPlace(db);

  GpConfig cfg;
  GlobalPlacer gp(db, db.movable(), cfg);
  gp.makeFillersFromDb();

  const std::vector<int> marks{0, 25, 80, 140, 200};
  std::printf("=== Fig. 3: mGP snapshots (mms_adaptec1s) ===\n");
  std::printf("%6s %12s %12s %10s\n", "iter", "W(HPWL)", "O(overlap)", "tau");

  double firstO = -1.0, lastW = 0.0, lastO = 0.0;
  auto snapshot = [&](int iter, double hpwlNow, double tau) {
    const double o = gridOverlapArea(db, false, 256, 256);
    const auto& f = gp.fillers();
    char path[64];
    std::snprintf(path, sizeof path, "fig3_iter%03d.ppm", iter);
    plotLayout(db, path, {}, f.cx, f.cy,
               std::vector<double>(f.size(), f.w),
               std::vector<double>(f.size(), f.h));
    std::printf("%6d %12.4g %12.4g %10.3f   -> %s\n", iter, hpwlNow, o, tau,
                path);
    if (firstO < 0.0) firstO = o;
    lastW = hpwlNow;
    lastO = o;
  };

  const GpResult res = gp.run([&](const GpIterTrace& t) {
    for (int m : marks) {
      if (t.iter == m) snapshot(t.iter, t.hpwl, t.overflow);
    }
  });
  snapshot(res.iterations, res.finalHpwl, res.finalOverflow);

  const bool shape = lastO < firstO / 3.0 && res.converged;
  std::printf("shape check (overlap collapses >3x, mGP converged): %s\n",
              shape ? "PASS" : "FAIL");
  std::printf(
      "paper Fig. 3: W 43.5e6 -> 63.4e6 while O 214e6 -> 16.5e6 over 265 "
      "iterations (same direction expected here at scale).\n");
  return shape ? 0 : 1;
}
