// Sec. V-A experiment: line search is the runtime bottleneck of CG-based
// nonlinear placers (the paper measured >60% of FFTPL's runtime on
// ADAPTEC1 going to line search), which motivates Nesterov + Lipschitz
// steplength. We measure the share of optimizer time spent in line-search
// evaluations for the bell-shape CG placer, and contrast the gradient-
// evaluation counts per iteration of both optimizers.
#include "common.h"

int main(int argc, char** argv) {
  using namespace ep;
  using namespace ep::bench;
  auto suite = ispd2005Suite();
  suite.resize(fastMode(argc, argv) ? 1 : 3);

  std::printf("=== Sec. V-A: line-search cost in CG vs Nesterov ===\n");
  std::printf("%-22s %14s %16s %18s\n", "circuit", "LS share",
              "CG evals/iter", "Nesterov evals/iter");

  bool shape = true;
  for (const auto& spec : suite) {
    PlacementDB db = generateCircuit(spec);
    quadraticInitialPlace(db);
    BellPlaceConfig bcfg;
    bcfg.maxOuterIterations = 8;
    bcfg.cgIterationsPerOuter = 50;
    const BellPlaceResult bell = bellPlace(db, bcfg);
    const double lsShare = bell.lineSearchSeconds /
                           std::max(bell.optimizerSeconds, 1e-12);
    const double cgEvalsPerIter =
        static_cast<double>(bell.gradEvals) /
        (bcfg.maxOuterIterations * bcfg.cgIterationsPerOuter);

    PlacementDB db2 = generateCircuit(spec);
    quadraticInitialPlace(db2);
    GlobalPlacer gp(db2, db2.movable(), {});
    gp.makeFillersFromDb();
    const GpResult nes = gp.run();
    const double nesEvalsPerIter =
        static_cast<double>(nes.gradEvals) / std::max(1, nes.iterations);

    std::printf("%-22s %13.1f%% %16.2f %18.2f\n", spec.name.c_str(),
                100.0 * lsShare, cgEvalsPerIter, nesEvalsPerIter);
    shape = shape && lsShare > 0.4 && nesEvalsPerIter < cgEvalsPerIter + 1.0;
  }

  std::printf("\npaper: line search >60%% of CG placer runtime; ePlace's "
              "Lipschitz prediction needs ~1 gradient per iteration "
              "(+1.037 backtracks avg -> <4%% overhead).\n");
  std::printf("shape check (LS dominates CG; Nesterov cheaper per iter): %s\n",
              shape ? "PASS" : "FAIL");
  return shape ? 0 : 1;
}
