// Extension experiment: timing-driven placement (paper future work,
// Sec. VIII) via criticality net weighting over the unchanged ePlace
// engine. Reports WNS / TNS / critical-path delay and the wirelength cost.
#include "common.h"
#include "timing/timing_driven.h"

int main(int argc, char** argv) {
  using namespace ep;
  using namespace ep::bench;
  auto suite = ispd2005Suite();
  suite.resize(fastMode(argc, argv) ? 1 : 3);

  std::printf("=== Extension: timing-driven placement (net weighting) ===\n");
  std::printf("%-22s %10s %10s %12s %12s %10s\n", "circuit", "WNS-pre",
              "WNS-post", "Tcrit-pre", "Tcrit-post", "HPWL-cost");

  bool shape = true;
  for (const auto& spec : suite) {
    PlacementDB db = generateCircuit(spec);
    TimingDrivenConfig cfg;
    cfg.rounds = 2;
    // Clock 10% tighter than the seed run's critical path, so WNS starts
    // negative and the weighting rounds have something to recover.
    cfg.clockFactor = 0.9;
    const TimingDrivenResult res = timingDrivenPlace(db, cfg);
    std::printf("%-22s %10.4g %10.4g %12.4g %12.4g %+9.2f%%\n",
                spec.name.c_str(), res.wnsBefore, res.wnsAfter,
                res.maxDelayBefore, res.maxDelayAfter,
                (res.hpwlAfter / res.hpwlBefore - 1.0) * 100.0);
    shape = shape && res.legal && res.wnsAfter >= res.wnsBefore - 1e-9;
  }

  std::printf("\nshape check (WNS never degrades — best round kept — and "
              "layouts stay legal): %s\n", shape ? "PASS" : "FAIL");
  std::printf("context: classic criticality weighting; the paper's engine "
              "needs no changes because Eq. 3/4 already honor net weights.\n");
  return shape ? 0 : 1;
}
