// Microbenchmarks for the per-iteration gradient kernels of mGP: the
// electrostatic density update+gradient and the WA vs LSE wirelength
// gradients, on generated circuits of increasing size. These are the 57%
// and 29% shares of Fig. 7.
#include <benchmark/benchmark.h>

#include "density/electro.h"
#include "gen/generator.h"
#include "qp/initial_place.h"
#include "wirelength/wl.h"

namespace {

struct Fixture {
  ep::PlacementDB db;
  std::vector<std::int32_t> objToVar;
  std::vector<double> x, y, w, h, gx, gy;

  explicit Fixture(std::size_t cells) {
    ep::GenSpec spec;
    spec.name = "micro";
    spec.numCells = cells;
    spec.seed = cells;
    db = ep::generateCircuit(spec);
    ep::quadraticInitialPlace(db);
    objToVar.assign(db.objects.size(), -1);
    std::int32_t v = 0;
    for (auto i : db.movable()) {
      objToVar[static_cast<std::size_t>(i)] = v++;
      const auto& o = db.objects[static_cast<std::size_t>(i)];
      const ep::Point c = o.center();
      x.push_back(c.x);
      y.push_back(c.y);
      w.push_back(o.w);
      h.push_back(o.h);
    }
    gx.resize(x.size());
    gy.resize(x.size());
  }
};

void BM_DensityUpdateAndGradient(benchmark::State& state) {
  Fixture f(static_cast<std::size_t>(state.range(0)));
  const std::size_t m = ep::BinGrid::chooseResolution(f.x.size());
  ep::ElectroDensity ed(f.db.region, m, m, 1.0);
  ed.stampFixed(f.db);
  const ep::ChargeView view{f.x, f.y, f.w, f.h};
  for (auto _ : state) {
    ed.update(view);
    ed.gradient(view, f.gx, f.gy);
    benchmark::DoNotOptimize(f.gx.data());
  }
}
BENCHMARK(BM_DensityUpdateAndGradient)->Arg(500)->Arg(2000)->Arg(8000);

void BM_WaWirelengthGradient(benchmark::State& state) {
  Fixture f(static_cast<std::size_t>(state.range(0)));
  const ep::VarView view{&f.db, f.objToVar, f.x, f.y};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ep::waWirelengthGrad(view, 1.0, 1.0, f.gx, f.gy));
  }
}
BENCHMARK(BM_WaWirelengthGradient)->Arg(500)->Arg(2000)->Arg(8000);

void BM_LseWirelengthGradient(benchmark::State& state) {
  Fixture f(static_cast<std::size_t>(state.range(0)));
  const ep::VarView view{&f.db, f.objToVar, f.x, f.y};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ep::lseWirelengthGrad(view, 1.0, 1.0, f.gx, f.gy));
  }
}
BENCHMARK(BM_LseWirelengthGradient)->Arg(500)->Arg(2000)->Arg(8000);

void BM_ExactHpwl(benchmark::State& state) {
  Fixture f(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ep::hpwl(f.db));
  }
}
BENCHMARK(BM_ExactHpwl)->Arg(500)->Arg(2000)->Arg(8000);

}  // namespace

BENCHMARK_MAIN();
